#include "engine/beam_search.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "engine/tensor_ops.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

namespace {

/// Log-softmax values for the top `k` logits, as (token, logp) pairs.
std::vector<std::pair<TokenId, double>> top_log_probs(std::span<const float> logits,
                                                      int k) {
  float max_v = logits[0];
  for (float v : logits) max_v = std::max(max_v, v);
  double lse = 0.0;
  for (float v : logits) lse += std::exp(static_cast<double>(v) - max_v);
  const double log_z = std::log(lse) + max_v;

  std::vector<std::size_t> order(logits.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto kth = std::min<std::size_t>(static_cast<std::size_t>(k), order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(kth),
                    order.end(),
                    [&](std::size_t a, std::size_t b) { return logits[a] > logits[b]; });
  std::vector<std::pair<TokenId, double>> out;
  out.reserve(kth);
  for (std::size_t i = 0; i < kth; ++i) {
    out.emplace_back(static_cast<TokenId>(order[i]),
                     static_cast<double>(logits[order[i]]) - log_z);
  }
  return out;
}

struct Beam {
  std::vector<TokenId> tokens;
  double log_prob = 0.0;
  std::unique_ptr<ContiguousKvStore> kv;
  std::vector<float> logits;  ///< logits after the last fed token
};

}  // namespace

BeamSearchResult beam_search(const MiniTransformer& model,
                             std::span<const TokenId> prompt,
                             std::int64_t max_new_tokens, int beam_width) {
  require(!prompt.empty(), "beam_search: empty prompt");
  require(max_new_tokens > 0, "beam_search: max_new_tokens must be positive");
  require(beam_width >= 1, "beam_search: beam width must be >= 1");

  // Seed beam: run the prompt once.
  std::vector<Beam> beams;
  {
    Beam b;
    b.kv = std::make_unique<ContiguousKvStore>(model.kv_dims());
    for (TokenId t : prompt) b.logits = model.forward(t, *b.kv);
    beams.push_back(std::move(b));
  }

  for (std::int64_t step = 0; step < max_new_tokens; ++step) {
    // Expand every live beam by its top-k continuations.
    struct Candidate {
      std::size_t parent;
      TokenId token;
      double log_prob;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < beams.size(); ++i) {
      for (const auto& [token, logp] : top_log_probs(beams[i].logits, beam_width)) {
        candidates.push_back({i, token, beams[i].log_prob + logp});
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.log_prob > b.log_prob;
                     });
    candidates.resize(
        std::min<std::size_t>(candidates.size(), static_cast<std::size_t>(beam_width)));

    // Materialize the surviving beams. KV caches are rebuilt by replay
    // when a parent spawns more than one survivor.
    std::vector<Beam> next;
    std::vector<bool> parent_consumed(beams.size(), false);
    for (const Candidate& c : candidates) {
      Beam nb;
      nb.tokens = beams[c.parent].tokens;
      nb.tokens.push_back(c.token);
      nb.log_prob = c.log_prob;
      if (!parent_consumed[c.parent]) {
        // First child steals the parent's cache (cheap path).
        parent_consumed[c.parent] = true;
        nb.kv = std::move(beams[c.parent].kv);
      } else {
        nb.kv = std::make_unique<ContiguousKvStore>(model.kv_dims());
        for (TokenId t : prompt) model.forward(t, *nb.kv);
        for (std::size_t i = 0; i + 1 < nb.tokens.size(); ++i)
          model.forward(nb.tokens[i], *nb.kv);
      }
      nb.logits = model.forward(c.token, *nb.kv);
      next.push_back(std::move(nb));
    }
    beams = std::move(next);
  }

  BeamSearchResult res;
  for (auto& b : beams) res.hypotheses.push_back({std::move(b.tokens), b.log_prob});
  std::stable_sort(res.hypotheses.begin(), res.hypotheses.end(),
                   [](const BeamHypothesis& a, const BeamHypothesis& b) {
                     return a.log_prob > b.log_prob;
                   });
  return res;
}

}  // namespace llmib::engine
