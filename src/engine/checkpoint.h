#pragma once

#include <iosfwd>
#include <string>

#include "engine/weights.h"

namespace llmib::engine {

/// Binary checkpoint format for mini-engine weights (a GGUF-in-spirit
/// single-file container): magic + version + the full ModelConfig followed
/// by every tensor as little-endian fp32. Lets examples and the CLI persist
/// a seeded model and reload it bit-exactly — the engine-side analogue of
/// the HF-weights/GGUF conversions the paper's frameworks require
/// (Appendix C's "convert HF weights to ... GGUF format").
namespace checkpoint {

inline constexpr char kMagic[8] = {'L', 'L', 'M', 'I', 'B', 'C', 'K', '1'};

/// Serialize to a binary stream. Throws util::ContractViolation on I/O
/// failure.
void save(const TransformerWeights& weights, std::ostream& out);
void save_file(const TransformerWeights& weights, const std::string& path);

/// Deserialize; validates magic, version, config invariants and tensor
/// sizes. Throws util::ContractViolation on any mismatch or truncation.
TransformerWeights load(std::istream& in);
TransformerWeights load_file(const std::string& path);

}  // namespace checkpoint

}  // namespace llmib::engine
