#include "engine/speculative.h"

#include "engine/tensor_ops.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

SpeculativeResult speculative_generate(const MiniTransformer& target,
                                       const MiniTransformer& draft,
                                       std::span<const TokenId> prompt,
                                       std::int64_t max_new_tokens, int lookahead) {
  require(!prompt.empty(), "speculative_generate: empty prompt");
  require(max_new_tokens > 0, "speculative_generate: max_new_tokens must be positive");
  require(lookahead >= 1, "speculative_generate: lookahead must be >= 1");
  require(target.config().vocab_size == draft.config().vocab_size,
          "speculative_generate: draft/target vocabularies differ");

  SpeculativeResult res;
  // The committed context; both models' caches are rebuilt from it whenever
  // a draft token is rejected (simple but exact — production engines roll
  // back the cache instead).
  std::vector<TokenId> context(prompt.begin(), prompt.end());
  const std::size_t target_len =
      prompt.size() + static_cast<std::size_t>(max_new_tokens);

  auto target_greedy = [&](std::span<const TokenId> ctx) {
    ContiguousKvStore kv(target.kv_dims());
    std::vector<float> logits;
    for (TokenId t : ctx) {
      logits = target.forward(t, kv);
      ++res.stats.target_forwards;
    }
    return static_cast<TokenId>(argmax(logits));
  };

  while (context.size() < target_len) {
    ++res.stats.cycles;
    // --- Draft proposes up to `lookahead` tokens greedily. ---------------
    std::vector<TokenId> proposal;
    {
      ContiguousKvStore kv(draft.kv_dims());
      std::vector<float> logits;
      for (TokenId t : context) logits = draft.forward(t, kv);
      for (int i = 0; i < lookahead &&
                      context.size() + proposal.size() + 1 < target_len;
           ++i) {
        const auto next = static_cast<TokenId>(argmax(logits));
        proposal.push_back(next);
        logits = draft.forward(next, kv);
      }
    }
    res.stats.proposed += proposal.size();

    // --- Target verifies the proposal token by token. ---------------------
    // (On real hardware this is ONE batched forward over all proposed
    // positions; token-equivalence is what we verify here.)
    std::vector<TokenId> verify_ctx = context;
    std::size_t accepted_here = 0;
    TokenId correction = 0;
    bool have_correction = false;
    for (TokenId proposed : proposal) {
      const TokenId truth = target_greedy(verify_ctx);
      if (truth == proposed) {
        verify_ctx.push_back(proposed);
        ++accepted_here;
      } else {
        correction = truth;
        have_correction = true;
        break;
      }
    }
    res.stats.accepted += accepted_here;

    for (std::size_t i = 0; i < accepted_here; ++i) {
      res.tokens.push_back(proposal[i]);
      context.push_back(proposal[i]);
    }
    if (context.size() >= target_len) break;
    // Either the correction token (rejection) or the target's bonus token
    // after a fully accepted proposal.
    const TokenId next = have_correction ? correction : target_greedy(context);
    res.tokens.push_back(next);
    context.push_back(next);
  }

  if (res.tokens.size() > static_cast<std::size_t>(max_new_tokens)) {
    res.tokens.resize(static_cast<std::size_t>(max_new_tokens));
  }
  return res;
}

}  // namespace llmib::engine
