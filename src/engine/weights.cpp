#include "engine/weights.h"

#include <cmath>

namespace llmib::engine {

namespace {

std::vector<float> gaussian(util::Rng& rng, std::size_t n, double stddev) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, stddev));
  return v;
}

std::vector<float> ones(std::size_t n) { return std::vector<float>(n, 1.0f); }

}  // namespace

TransformerWeights TransformerWeights::random(const models::ModelConfig& cfg,
                                              std::uint64_t seed) {
  cfg.validate();
  util::Rng rng(seed);
  TransformerWeights w;
  w.config = cfg;

  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto head_dim = static_cast<std::size_t>(cfg.head_dim());
  const auto q_dim = static_cast<std::size_t>(cfg.n_heads) * head_dim;
  const auto vocab = static_cast<std::size_t>(cfg.vocab_size);
  const auto inter = static_cast<std::size_t>(cfg.ffn_intermediate);
  const double init = 1.0 / std::sqrt(static_cast<double>(hidden));

  w.embedding = gaussian(rng, vocab * hidden, init);
  w.final_norm = ones(hidden);
  w.lm_head = gaussian(rng, vocab * hidden, init);

  w.layers.resize(static_cast<std::size_t>(cfg.n_layers));
  for (int l = 0; l < cfg.n_layers; ++l) {
    LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    const int kv_heads = cfg.kv_heads_per_layer.empty()
                             ? cfg.n_kv_heads
                             : cfg.kv_heads_per_layer[static_cast<std::size_t>(l)];
    const auto kv_dim = static_cast<std::size_t>(kv_heads) * head_dim;
    lw.attn_norm = ones(hidden);
    lw.wq = gaussian(rng, q_dim * hidden, init);
    lw.wk = gaussian(rng, kv_dim * hidden, init);
    lw.wv = gaussian(rng, kv_dim * hidden, init);
    lw.wo = gaussian(rng, hidden * q_dim, init);
    lw.ffn_norm = ones(hidden);
    const auto n_experts = static_cast<std::size_t>(cfg.n_experts);
    lw.w_gate.reserve(n_experts);
    lw.w_up.reserve(n_experts);
    lw.w_down.reserve(n_experts);
    for (std::size_t e = 0; e < n_experts; ++e) {
      lw.w_gate.push_back(gaussian(rng, inter * hidden, init));
      lw.w_up.push_back(gaussian(rng, inter * hidden, init));
      lw.w_down.push_back(gaussian(rng, hidden * inter,
                                   1.0 / std::sqrt(static_cast<double>(inter))));
    }
    if (cfg.ffn == models::FfnKind::kMoE) {
      lw.router = gaussian(rng, n_experts * hidden, init);
    }
  }
  return w;
}

std::size_t TransformerWeights::parameter_count() const {
  std::size_t n = embedding.size() + final_norm.size() + lm_head.size();
  for (const auto& l : layers) {
    n += l.attn_norm.size() + l.wq.size() + l.wk.size() + l.wv.size() + l.wo.size() +
         l.ffn_norm.size() + l.router.size();
    for (const auto& m : l.w_gate) n += m.size();
    for (const auto& m : l.w_up) n += m.size();
    for (const auto& m : l.w_down) n += m.size();
  }
  return n;
}

QuantizedWeights QuantizedWeights::from(const TransformerWeights& w) {
  QuantizedWeights q;
  const auto& cfg = w.config;
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto head_dim = static_cast<std::size_t>(cfg.head_dim());
  const auto q_dim = static_cast<std::size_t>(cfg.n_heads) * head_dim;
  const auto inter = static_cast<std::size_t>(cfg.ffn_intermediate);
  q.layers.reserve(w.layers.size());
  for (std::size_t l = 0; l < w.layers.size(); ++l) {
    const auto& lw = w.layers[l];
    const std::size_t kv_dim = lw.wk.size() / hidden;
    QuantizedLayerWeights ql;
    ql.wq = quant::Int8Matrix::quantize(lw.wq, q_dim, hidden);
    ql.wk = quant::Int8Matrix::quantize(lw.wk, kv_dim, hidden);
    ql.wv = quant::Int8Matrix::quantize(lw.wv, kv_dim, hidden);
    ql.wo = quant::Int8Matrix::quantize(lw.wo, hidden, q_dim);
    for (std::size_t e = 0; e < lw.w_gate.size(); ++e) {
      ql.w_gate.push_back(quant::Int8Matrix::quantize(lw.w_gate[e], inter, hidden));
      ql.w_up.push_back(quant::Int8Matrix::quantize(lw.w_up[e], inter, hidden));
      ql.w_down.push_back(quant::Int8Matrix::quantize(lw.w_down[e], hidden, inter));
    }
    q.layers.push_back(std::move(ql));
  }
  q.lm_head = quant::Int8Matrix::quantize(
      w.lm_head, static_cast<std::size_t>(cfg.vocab_size), hidden);
  return q;
}

}  // namespace llmib::engine
