#include "engine/kv_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "engine/kernels/kernels.h"
#include "quant/numeric.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

// ------------------------------------------------------------------ helpers

KvRun KvRun::slice(std::size_t off, std::size_t n, std::size_t dim) const {
  KvRun r = *this;
  r.len = n;
  if (r.k != nullptr) r.k += off * dim;
  if (r.v != nullptr) r.v += off * dim;
  if (r.kq != nullptr) r.kq += off * dim;
  if (r.vq != nullptr) r.vq += off * dim;
  if (r.k_scale != nullptr) r.k_scale += off;
  if (r.v_scale != nullptr) r.v_scale += off;
  return r;
}

float quantize_kv_row(KvQuant fmt, std::span<const float> row, std::uint8_t* out) {
  if (fmt == KvQuant::kInt8) {
    float amax = 0.0f;
    for (const float x : row) amax = std::max(amax, std::fabs(x));
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const float q = std::clamp(std::nearbyint(row[i] * inv), -127.0f, 127.0f);
      out[i] = static_cast<std::uint8_t>(static_cast<std::int8_t>(q));
    }
    return scale;
  }
  require(fmt == KvQuant::kFp8, "quantize_kv_row: fp32 rows are not quantized");
  for (std::size_t i = 0; i < row.size(); ++i)
    out[i] = quant::fp8_e4m3_encode(row[i]);
  return 1.0f;
}

void dequantize_kv_row(KvQuant fmt, const std::uint8_t* bytes, float scale,
                       std::span<float> out) {
  if (fmt == KvQuant::kInt8) {
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = static_cast<float>(static_cast<std::int8_t>(bytes[i])) * scale;
    return;
  }
  require(fmt == KvQuant::kFp8, "dequantize_kv_row: fp32 rows are not quantized");
  const float* table = kernels::fp8_e4m3_table();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = table[bytes[i]];
}

void dequantize_run_row(const KvRun& r, std::size_t idx, bool value,
                        std::size_t dim, std::span<float> out) {
  require(r.fmt != KvQuant::kFp32, "dequantize_run_row: fp32 run");
  require(idx < r.len && out.size() == dim, "dequantize_run_row: bad row");
  const std::uint8_t* bytes = (value ? r.vq : r.kq) + idx * dim;
  const float* scales = value ? r.v_scale : r.k_scale;
  dequantize_kv_row(r.fmt, bytes, scales != nullptr ? scales[idx] : 1.0f, out);
}

std::size_t kv_quant_bytes_per_token(const std::vector<std::size_t>& kv_dims,
                                     KvQuant fmt) {
  std::size_t bytes = 0;
  for (const std::size_t dim : kv_dims) {
    switch (fmt) {
      case KvQuant::kFp32: bytes += 2 * dim * sizeof(float); break;
      case KvQuant::kInt8: bytes += 2 * dim + 2 * sizeof(float); break;
      case KvQuant::kFp8: bytes += 2 * dim; break;
    }
  }
  return bytes;
}

// --------------------------------------------------------------------- base

void KvStore::runs(int layer, std::size_t first, std::size_t len,
                   std::vector<KvRun>& out) const {
  // Fallback for stores without a native slab layout: one run per position.
  for (std::size_t p = first; p < first + len; ++p)
    out.push_back({key(layer, p).data(), value(layer, p).data(), 1});
}

bool KvStore::append_quantized(int, KvQuant, std::span<const std::uint8_t>,
                               std::span<const std::uint8_t>, float, float) {
  require(false, "KvStore: append_quantized needs a quantized store");
  return false;
}

// ---------------------------------------------------------------- contiguous

ContiguousKvStore::ContiguousKvStore(std::vector<std::size_t> kv_dims)
    : kv_dims_(std::move(kv_dims)), keys_(kv_dims_.size()), values_(kv_dims_.size()) {
  require(!kv_dims_.empty(), "ContiguousKvStore: need at least one layer");
}

bool ContiguousKvStore::append(int layer, std::span<const float> k,
                               std::span<const float> v) {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(layer == appended_layers_, "ContiguousKvStore: layers must append in order");
  require(k.size() == kv_dims_[l] && v.size() == kv_dims_[l],
          "ContiguousKvStore: kv dim mismatch");
  keys_[l].insert(keys_[l].end(), k.begin(), k.end());
  values_[l].insert(values_[l].end(), v.begin(), v.end());
  if (++appended_layers_ == static_cast<int>(kv_dims_.size())) {
    appended_layers_ = 0;
    ++tokens_;
  }
  return true;
}

std::span<const float> ContiguousKvStore::key(int layer, std::size_t pos) const {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(kv_dims_[l] > 0, "ContiguousKvStore: layer holds no KV");
  // During a token's layer-by-layer append, already-appended layers hold
  // one more entry than tokens_ reports.
  require(pos < keys_[l].size() / kv_dims_[l], "ContiguousKvStore: bad access");
  return {keys_[l].data() + pos * kv_dims_[l], kv_dims_[l]};
}

std::span<const float> ContiguousKvStore::value(int layer, std::size_t pos) const {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(kv_dims_[l] > 0, "ContiguousKvStore: layer holds no KV");
  require(pos < values_[l].size() / kv_dims_[l], "ContiguousKvStore: bad access");
  return {values_[l].data() + pos * kv_dims_[l], kv_dims_[l]};
}

void ContiguousKvStore::runs(int layer, std::size_t first, std::size_t len,
                             std::vector<KvRun>& out) const {
  if (len == 0) return;
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(kv_dims_[l] > 0, "ContiguousKvStore: layer holds no KV");
  const std::size_t dim = kv_dims_[l];
  require(first + len <= keys_[l].size() / dim, "ContiguousKvStore: bad run range");
  out.push_back({keys_[l].data() + first * dim, values_[l].data() + first * dim, len});
}

std::size_t ContiguousKvStore::stored_floats() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < kv_dims_.size(); ++l)
    total += keys_[l].size() + values_[l].size();
  return total;
}

// --------------------------------------------------------------------- pool

PagedKvPool::PagedKvPool(std::uint32_t total_blocks, std::uint32_t block_size,
                         std::vector<std::size_t> kv_dims, KvQuant fmt)
    : alloc_(total_blocks, block_size),
      block_size_(block_size),
      kv_dims_(std::move(kv_dims)),
      fmt_(fmt) {
  require(!kv_dims_.empty(), "PagedKvPool: need at least one layer");
  const std::size_t layers = kv_dims_.size();
  if (fmt_ == KvQuant::kFp32) {
    keys_.resize(layers);
    values_.resize(layers);
    for (std::size_t l = 0; l < layers; ++l) {
      const std::size_t n =
          static_cast<std::size_t>(total_blocks) * block_size * kv_dims_[l];
      keys_[l].assign(n, 0.0f);
      values_[l].assign(n, 0.0f);
    }
    return;
  }
  key_bytes_.resize(layers);
  value_bytes_.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t n =
        static_cast<std::size_t>(total_blocks) * block_size * kv_dims_[l];
    key_bytes_[l].assign(n, 0);
    value_bytes_[l].assign(n, 0);
  }
  if (fmt_ == KvQuant::kInt8) {
    const std::size_t slots = static_cast<std::size_t>(total_blocks) * block_size;
    key_scales_.resize(layers);
    value_scales_.resize(layers);
    for (std::size_t l = 0; l < layers; ++l) {
      key_scales_[l].assign(slots, 1.0f);
      value_scales_[l].assign(slots, 1.0f);
    }
  }
}

std::size_t PagedKvPool::bytes_per_token() const {
  return kv_quant_bytes_per_token(kv_dims_, fmt_);
}

std::span<float> PagedKvPool::key_slot(int layer, kv::BlockId block,
                                       std::uint32_t offset) {
  require(fmt_ == KvQuant::kFp32, "PagedKvPool: fp32 slot on quantized pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {keys_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<float> PagedKvPool::value_slot(int layer, kv::BlockId block,
                                         std::uint32_t offset) {
  require(fmt_ == KvQuant::kFp32, "PagedKvPool: fp32 slot on quantized pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {values_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<const float> PagedKvPool::key_slot(int layer, kv::BlockId block,
                                             std::uint32_t offset) const {
  require(fmt_ == KvQuant::kFp32, "PagedKvPool: fp32 slot on quantized pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {keys_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<const float> PagedKvPool::value_slot(int layer, kv::BlockId block,
                                               std::uint32_t offset) const {
  require(fmt_ == KvQuant::kFp32, "PagedKvPool: fp32 slot on quantized pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {values_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<std::uint8_t> PagedKvPool::key_bytes(int layer, kv::BlockId block,
                                               std::uint32_t offset) {
  require(fmt_ != KvQuant::kFp32, "PagedKvPool: byte slot on fp32 pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {key_bytes_[l].data() +
              (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<std::uint8_t> PagedKvPool::value_bytes(int layer, kv::BlockId block,
                                                 std::uint32_t offset) {
  require(fmt_ != KvQuant::kFp32, "PagedKvPool: byte slot on fp32 pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {value_bytes_[l].data() +
              (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<const std::uint8_t> PagedKvPool::key_bytes(int layer, kv::BlockId block,
                                                     std::uint32_t offset) const {
  require(fmt_ != KvQuant::kFp32, "PagedKvPool: byte slot on fp32 pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {key_bytes_[l].data() +
              (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<const std::uint8_t> PagedKvPool::value_bytes(int layer, kv::BlockId block,
                                                       std::uint32_t offset) const {
  require(fmt_ != KvQuant::kFp32, "PagedKvPool: byte slot on fp32 pool");
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {value_bytes_[l].data() +
              (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

float* PagedKvPool::key_scale(int layer, kv::BlockId block, std::uint32_t offset) {
  require(fmt_ == KvQuant::kInt8, "PagedKvPool: scales exist only for int8");
  return key_scales_[static_cast<std::size_t>(layer)].data() +
         static_cast<std::size_t>(block) * block_size_ + offset;
}

float* PagedKvPool::value_scale(int layer, kv::BlockId block, std::uint32_t offset) {
  require(fmt_ == KvQuant::kInt8, "PagedKvPool: scales exist only for int8");
  return value_scales_[static_cast<std::size_t>(layer)].data() +
         static_cast<std::size_t>(block) * block_size_ + offset;
}

const float* PagedKvPool::key_scale(int layer, kv::BlockId block,
                                    std::uint32_t offset) const {
  require(fmt_ == KvQuant::kInt8, "PagedKvPool: scales exist only for int8");
  return key_scales_[static_cast<std::size_t>(layer)].data() +
         static_cast<std::size_t>(block) * block_size_ + offset;
}

const float* PagedKvPool::value_scale(int layer, kv::BlockId block,
                                      std::uint32_t offset) const {
  require(fmt_ == KvQuant::kInt8, "PagedKvPool: scales exist only for int8");
  return value_scales_[static_cast<std::size_t>(layer)].data() +
         static_cast<std::size_t>(block) * block_size_ + offset;
}

void PagedKvPool::copy_block(kv::BlockId src, kv::BlockId dst) {
  for (std::size_t l = 0; l < kv_dims_.size(); ++l) {
    const std::size_t dim = kv_dims_[l];
    const std::size_t span = static_cast<std::size_t>(block_size_) * dim;
    if (fmt_ == KvQuant::kFp32) {
      std::copy_n(keys_[l].data() + static_cast<std::size_t>(src) * span, span,
                  keys_[l].data() + static_cast<std::size_t>(dst) * span);
      std::copy_n(values_[l].data() + static_cast<std::size_t>(src) * span, span,
                  values_[l].data() + static_cast<std::size_t>(dst) * span);
      continue;
    }
    std::copy_n(key_bytes_[l].data() + static_cast<std::size_t>(src) * span, span,
                key_bytes_[l].data() + static_cast<std::size_t>(dst) * span);
    std::copy_n(value_bytes_[l].data() + static_cast<std::size_t>(src) * span, span,
                value_bytes_[l].data() + static_cast<std::size_t>(dst) * span);
    if (fmt_ == KvQuant::kInt8) {
      std::copy_n(key_scales_[l].data() + static_cast<std::size_t>(src) * block_size_,
                  block_size_,
                  key_scales_[l].data() + static_cast<std::size_t>(dst) * block_size_);
      std::copy_n(value_scales_[l].data() + static_cast<std::size_t>(src) * block_size_,
                  block_size_,
                  value_scales_[l].data() + static_cast<std::size_t>(dst) * block_size_);
    }
  }
}

// -------------------------------------------------------------------- paged

PagedKvStore::PagedKvStore(PagedKvPool& pool, kv::SeqId id) : pool_(pool), id_(id) {
  pool_.allocator().create_sequence(id_);
}

PagedKvStore::PagedKvStore(PagedKvPool& pool, kv::SeqId id,
                           const PagedKvStore& parent)
    : pool_(pool), id_(id), tokens_(parent.tokens_) {
  require(&pool == &parent.pool_, "PagedKvStore: fork must stay in one pool");
  require(parent.appended_layers_ == 0,
          "PagedKvStore: cannot fork mid-token append");
  pool_.allocator().fork_sequence(parent.id_, id_);
}

PagedKvStore::PagedKvStore(PagedKvPool& pool, kv::SeqId id,
                           const PagedKvStore& parent, std::size_t prefix_tokens)
    : pool_(pool), id_(id), tokens_(prefix_tokens) {
  require(&pool == &parent.pool_, "PagedKvStore: fork must stay in one pool");
  require(parent.appended_layers_ == 0,
          "PagedKvStore: cannot fork mid-token append");
  require(prefix_tokens <= parent.tokens_,
          "PagedKvStore: prefix fork longer than parent");
  pool_.allocator().fork_sequence(parent.id_, id_, prefix_tokens);
}

PagedKvStore::~PagedKvStore() { pool_.allocator().free_sequence(id_); }

bool PagedKvStore::claim_slot(int layer, std::size_t dim, kv::BlockId& block,
                              std::uint32_t& offset) {
  const auto& dims = pool_.kv_dims();
  const auto l = static_cast<std::size_t>(layer);
  require(l < dims.size(), "PagedKvStore: bad layer");
  require(layer == appended_layers_, "PagedKvStore: layers must append in order");
  require(dim == dims[l], "PagedKvStore: kv dim mismatch");

  // Blocks are claimed when layer 0 of a new token arrives; later layers
  // reuse the same (block, offset) since token count advances only after
  // the last layer.
  if (layer == 0) {
    std::vector<kv::CowCopy> cow;
    if (!pool_.allocator().append_tokens(id_, 1, &cow)) return false;
    for (const auto& c : cow) pool_.copy_block(c.src, c.dst);
  }
  const auto& table = pool_.allocator().block_table(id_);
  const std::size_t pos = tokens_;
  block = table[pos / pool_.block_size()];
  offset = static_cast<std::uint32_t>(pos % pool_.block_size());
  return true;
}

void PagedKvStore::advance_layer() {
  if (++appended_layers_ == static_cast<int>(pool_.kv_dims().size())) {
    appended_layers_ = 0;
    ++tokens_;
  }
}

bool PagedKvStore::append(int layer, std::span<const float> k,
                          std::span<const float> v) {
  require(k.size() == v.size(), "PagedKvStore: kv dim mismatch");
  kv::BlockId block = 0;
  std::uint32_t offset = 0;
  if (!claim_slot(layer, k.size(), block, offset)) return false;
  if (pool_.quant() == KvQuant::kFp32) {
    auto kdst = pool_.key_slot(layer, block, offset);
    auto vdst = pool_.value_slot(layer, block, offset);
    std::copy(k.begin(), k.end(), kdst.begin());
    std::copy(v.begin(), v.end(), vdst.begin());
  } else {
    const float ks = quantize_kv_row(pool_.quant(), k,
                                     pool_.key_bytes(layer, block, offset).data());
    const float vs = quantize_kv_row(pool_.quant(), v,
                                     pool_.value_bytes(layer, block, offset).data());
    if (pool_.quant() == KvQuant::kInt8) {
      *pool_.key_scale(layer, block, offset) = ks;
      *pool_.value_scale(layer, block, offset) = vs;
    }
  }
  advance_layer();
  return true;
}

bool PagedKvStore::append_quantized(int layer, KvQuant fmt,
                                    std::span<const std::uint8_t> k,
                                    std::span<const std::uint8_t> v,
                                    float k_scale, float v_scale) {
  require(fmt == pool_.quant() && fmt != KvQuant::kFp32,
          "PagedKvStore: append_quantized format mismatch");
  require(k.size() == v.size(), "PagedKvStore: kv dim mismatch");
  kv::BlockId block = 0;
  std::uint32_t offset = 0;
  if (!claim_slot(layer, k.size(), block, offset)) return false;
  auto kdst = pool_.key_bytes(layer, block, offset);
  auto vdst = pool_.value_bytes(layer, block, offset);
  std::copy(k.begin(), k.end(), kdst.begin());
  std::copy(v.begin(), v.end(), vdst.begin());
  if (pool_.quant() == KvQuant::kInt8) {
    *pool_.key_scale(layer, block, offset) = k_scale;
    *pool_.value_scale(layer, block, offset) = v_scale;
  }
  advance_layer();
  return true;
}

std::size_t PagedKvStore::tokens_visible(int layer) const {
  return tokens_ + (layer < appended_layers_ ? 1 : 0);
}

std::span<const float> PagedKvStore::key(int layer, std::size_t pos) const {
  require(pos < tokens_visible(layer), "PagedKvStore: bad position");
  const auto& table = pool_.allocator().block_table(id_);
  const kv::BlockId block = table[pos / pool_.block_size()];
  const auto offset = static_cast<std::uint32_t>(pos % pool_.block_size());
  if (pool_.quant() == KvQuant::kFp32) return pool_.key_slot(layer, block, offset);
  auto bytes = pool_.key_bytes(layer, block, offset);
  if (dq_key_.size() < bytes.size()) dq_key_.resize(bytes.size());
  const float scale = pool_.quant() == KvQuant::kInt8
                          ? *pool_.key_scale(layer, block, offset)
                          : 1.0f;
  dequantize_kv_row(pool_.quant(), bytes.data(), scale,
                    {dq_key_.data(), bytes.size()});
  return {dq_key_.data(), bytes.size()};
}

std::span<const float> PagedKvStore::value(int layer, std::size_t pos) const {
  require(pos < tokens_visible(layer), "PagedKvStore: bad position");
  const auto& table = pool_.allocator().block_table(id_);
  const kv::BlockId block = table[pos / pool_.block_size()];
  const auto offset = static_cast<std::uint32_t>(pos % pool_.block_size());
  if (pool_.quant() == KvQuant::kFp32) return pool_.value_slot(layer, block, offset);
  auto bytes = pool_.value_bytes(layer, block, offset);
  if (dq_value_.size() < bytes.size()) dq_value_.resize(bytes.size());
  const float scale = pool_.quant() == KvQuant::kInt8
                          ? *pool_.value_scale(layer, block, offset)
                          : 1.0f;
  dequantize_kv_row(pool_.quant(), bytes.data(), scale,
                    {dq_value_.data(), bytes.size()});
  return {dq_value_.data(), bytes.size()};
}

void PagedKvStore::runs(int layer, std::size_t first, std::size_t len,
                        std::vector<KvRun>& out) const {
  if (len == 0) return;
  require(first + len <= tokens_visible(layer), "PagedKvStore: bad run range");
  const auto& table = pool_.allocator().block_table(id_);
  const std::size_t bs = pool_.block_size();
  const KvQuant fmt = pool_.quant();
  std::size_t p = first;
  const std::size_t end = first + len;
  while (p < end) {
    // Extend across logically consecutive blocks while they are also
    // physically consecutive in the pool (ids ascend by exactly one).
    const std::size_t start_block = p / bs;
    std::size_t block_idx = start_block;
    while ((block_idx + 1) * bs < end &&
           table[block_idx + 1] ==
               table[start_block] + static_cast<kv::BlockId>(block_idx + 1 - start_block))
      ++block_idx;
    const std::size_t stop = std::min(end, (block_idx + 1) * bs);
    const auto offset = static_cast<std::uint32_t>(p % bs);
    if (fmt == KvQuant::kFp32) {
      out.push_back({pool_.key_slot(layer, table[start_block], offset).data(),
                     pool_.value_slot(layer, table[start_block], offset).data(),
                     stop - p});
    } else {
      KvRun r;
      r.len = stop - p;
      r.fmt = fmt;
      r.kq = pool_.key_bytes(layer, table[start_block], offset).data();
      r.vq = pool_.value_bytes(layer, table[start_block], offset).data();
      if (fmt == KvQuant::kInt8) {
        r.k_scale = pool_.key_scale(layer, table[start_block], offset);
        r.v_scale = pool_.value_scale(layer, table[start_block], offset);
      }
      out.push_back(r);
    }
    p = stop;
  }
}

}  // namespace llmib::engine
