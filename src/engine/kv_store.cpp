#include "engine/kv_store.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace llmib::engine {

using util::require;

// --------------------------------------------------------------------- base

void KvStore::runs(int layer, std::size_t first, std::size_t len,
                   std::vector<KvRun>& out) const {
  // Fallback for stores without a native slab layout: one run per position.
  for (std::size_t p = first; p < first + len; ++p)
    out.push_back({key(layer, p).data(), value(layer, p).data(), 1});
}

// ---------------------------------------------------------------- contiguous

ContiguousKvStore::ContiguousKvStore(std::vector<std::size_t> kv_dims)
    : kv_dims_(std::move(kv_dims)), keys_(kv_dims_.size()), values_(kv_dims_.size()) {
  require(!kv_dims_.empty(), "ContiguousKvStore: need at least one layer");
}

bool ContiguousKvStore::append(int layer, std::span<const float> k,
                               std::span<const float> v) {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(layer == appended_layers_, "ContiguousKvStore: layers must append in order");
  require(k.size() == kv_dims_[l] && v.size() == kv_dims_[l],
          "ContiguousKvStore: kv dim mismatch");
  keys_[l].insert(keys_[l].end(), k.begin(), k.end());
  values_[l].insert(values_[l].end(), v.begin(), v.end());
  if (++appended_layers_ == static_cast<int>(kv_dims_.size())) {
    appended_layers_ = 0;
    ++tokens_;
  }
  return true;
}

std::span<const float> ContiguousKvStore::key(int layer, std::size_t pos) const {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(kv_dims_[l] > 0, "ContiguousKvStore: layer holds no KV");
  // During a token's layer-by-layer append, already-appended layers hold
  // one more entry than tokens_ reports.
  require(pos < keys_[l].size() / kv_dims_[l], "ContiguousKvStore: bad access");
  return {keys_[l].data() + pos * kv_dims_[l], kv_dims_[l]};
}

std::span<const float> ContiguousKvStore::value(int layer, std::size_t pos) const {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(kv_dims_[l] > 0, "ContiguousKvStore: layer holds no KV");
  require(pos < values_[l].size() / kv_dims_[l], "ContiguousKvStore: bad access");
  return {values_[l].data() + pos * kv_dims_[l], kv_dims_[l]};
}

void ContiguousKvStore::runs(int layer, std::size_t first, std::size_t len,
                             std::vector<KvRun>& out) const {
  if (len == 0) return;
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "ContiguousKvStore: bad layer");
  require(kv_dims_[l] > 0, "ContiguousKvStore: layer holds no KV");
  const std::size_t dim = kv_dims_[l];
  require(first + len <= keys_[l].size() / dim, "ContiguousKvStore: bad run range");
  out.push_back({keys_[l].data() + first * dim, values_[l].data() + first * dim, len});
}

std::size_t ContiguousKvStore::stored_floats() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < kv_dims_.size(); ++l)
    total += keys_[l].size() + values_[l].size();
  return total;
}

// --------------------------------------------------------------------- pool

PagedKvPool::PagedKvPool(std::uint32_t total_blocks, std::uint32_t block_size,
                         std::vector<std::size_t> kv_dims)
    : alloc_(total_blocks, block_size),
      block_size_(block_size),
      kv_dims_(std::move(kv_dims)) {
  require(!kv_dims_.empty(), "PagedKvPool: need at least one layer");
  keys_.resize(kv_dims_.size());
  values_.resize(kv_dims_.size());
  for (std::size_t l = 0; l < kv_dims_.size(); ++l) {
    const std::size_t n =
        static_cast<std::size_t>(total_blocks) * block_size * kv_dims_[l];
    keys_[l].assign(n, 0.0f);
    values_[l].assign(n, 0.0f);
  }
}

std::span<float> PagedKvPool::key_slot(int layer, kv::BlockId block,
                                       std::uint32_t offset) {
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {keys_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<float> PagedKvPool::value_slot(int layer, kv::BlockId block,
                                         std::uint32_t offset) {
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {values_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<const float> PagedKvPool::key_slot(int layer, kv::BlockId block,
                                             std::uint32_t offset) const {
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {keys_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

std::span<const float> PagedKvPool::value_slot(int layer, kv::BlockId block,
                                               std::uint32_t offset) const {
  const auto l = static_cast<std::size_t>(layer);
  const std::size_t dim = kv_dims_[l];
  return {values_[l].data() + (static_cast<std::size_t>(block) * block_size_ + offset) * dim,
          dim};
}

void PagedKvPool::copy_block(kv::BlockId src, kv::BlockId dst) {
  for (std::size_t l = 0; l < kv_dims_.size(); ++l) {
    const std::size_t dim = kv_dims_[l];
    const std::size_t span = static_cast<std::size_t>(block_size_) * dim;
    std::copy_n(keys_[l].data() + static_cast<std::size_t>(src) * span, span,
                keys_[l].data() + static_cast<std::size_t>(dst) * span);
    std::copy_n(values_[l].data() + static_cast<std::size_t>(src) * span, span,
                values_[l].data() + static_cast<std::size_t>(dst) * span);
  }
}

// -------------------------------------------------------------------- paged

PagedKvStore::PagedKvStore(PagedKvPool& pool, kv::SeqId id) : pool_(pool), id_(id) {
  pool_.allocator().create_sequence(id_);
}

PagedKvStore::PagedKvStore(PagedKvPool& pool, kv::SeqId id,
                           const PagedKvStore& parent)
    : pool_(pool), id_(id), tokens_(parent.tokens_) {
  require(&pool == &parent.pool_, "PagedKvStore: fork must stay in one pool");
  require(parent.appended_layers_ == 0,
          "PagedKvStore: cannot fork mid-token append");
  pool_.allocator().fork_sequence(parent.id_, id_);
}

PagedKvStore::PagedKvStore(PagedKvPool& pool, kv::SeqId id,
                           const PagedKvStore& parent, std::size_t prefix_tokens)
    : pool_(pool), id_(id), tokens_(prefix_tokens) {
  require(&pool == &parent.pool_, "PagedKvStore: fork must stay in one pool");
  require(parent.appended_layers_ == 0,
          "PagedKvStore: cannot fork mid-token append");
  require(prefix_tokens <= parent.tokens_,
          "PagedKvStore: prefix fork longer than parent");
  pool_.allocator().fork_sequence(parent.id_, id_, prefix_tokens);
}

PagedKvStore::~PagedKvStore() { pool_.allocator().free_sequence(id_); }

bool PagedKvStore::append(int layer, std::span<const float> k,
                          std::span<const float> v) {
  const auto& dims = pool_.kv_dims();
  const auto l = static_cast<std::size_t>(layer);
  require(l < dims.size(), "PagedKvStore: bad layer");
  require(layer == appended_layers_, "PagedKvStore: layers must append in order");
  require(k.size() == dims[l] && v.size() == dims[l], "PagedKvStore: kv dim mismatch");

  // Blocks are claimed when layer 0 of a new token arrives; later layers
  // reuse the same (block, offset) since token count advances only after
  // the last layer.
  if (layer == 0) {
    std::vector<kv::CowCopy> cow;
    if (!pool_.allocator().append_tokens(id_, 1, &cow)) return false;
    for (const auto& c : cow) pool_.copy_block(c.src, c.dst);
  }
  const auto& table = pool_.allocator().block_table(id_);
  const std::size_t pos = tokens_;
  const kv::BlockId block = table[pos / pool_.block_size()];
  const auto offset = static_cast<std::uint32_t>(pos % pool_.block_size());
  auto kdst = pool_.key_slot(layer, block, offset);
  auto vdst = pool_.value_slot(layer, block, offset);
  std::copy(k.begin(), k.end(), kdst.begin());
  std::copy(v.begin(), v.end(), vdst.begin());
  if (++appended_layers_ == static_cast<int>(dims.size())) {
    appended_layers_ = 0;
    ++tokens_;
  }
  return true;
}

std::size_t PagedKvStore::tokens_visible(int layer) const {
  return tokens_ + (layer < appended_layers_ ? 1 : 0);
}

std::span<const float> PagedKvStore::key(int layer, std::size_t pos) const {
  require(pos < tokens_visible(layer), "PagedKvStore: bad position");
  const auto& table = pool_.allocator().block_table(id_);
  const kv::BlockId block = table[pos / pool_.block_size()];
  const auto offset = static_cast<std::uint32_t>(pos % pool_.block_size());
  return pool_.key_slot(layer, block, offset);
}

std::span<const float> PagedKvStore::value(int layer, std::size_t pos) const {
  require(pos < tokens_visible(layer), "PagedKvStore: bad position");
  const auto& table = pool_.allocator().block_table(id_);
  const kv::BlockId block = table[pos / pool_.block_size()];
  const auto offset = static_cast<std::uint32_t>(pos % pool_.block_size());
  return pool_.value_slot(layer, block, offset);
}

void PagedKvStore::runs(int layer, std::size_t first, std::size_t len,
                        std::vector<KvRun>& out) const {
  if (len == 0) return;
  require(first + len <= tokens_visible(layer), "PagedKvStore: bad run range");
  const auto& table = pool_.allocator().block_table(id_);
  const std::size_t bs = pool_.block_size();
  std::size_t p = first;
  const std::size_t end = first + len;
  while (p < end) {
    // Extend across logically consecutive blocks while they are also
    // physically consecutive in the pool (ids ascend by exactly one).
    const std::size_t start_block = p / bs;
    std::size_t block_idx = start_block;
    while ((block_idx + 1) * bs < end &&
           table[block_idx + 1] ==
               table[start_block] + static_cast<kv::BlockId>(block_idx + 1 - start_block))
      ++block_idx;
    const std::size_t stop = std::min(end, (block_idx + 1) * bs);
    const auto offset = static_cast<std::uint32_t>(p % bs);
    out.push_back({pool_.key_slot(layer, table[start_block], offset).data(),
                   pool_.value_slot(layer, table[start_block], offset).data(),
                   stop - p});
    p = stop;
  }
}

}  // namespace llmib::engine
