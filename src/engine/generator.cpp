#include "engine/batched.h"
#include "engine/generator.h"

#include <cstring>

#include "engine/tensor_ops.h"
#include "obs/obs.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

GenerateResult generate(const MiniTransformer& model, std::span<const TokenId> prompt,
                        const GenerateOptions& opts) {
  require(!prompt.empty(), "generate: empty prompt");
  require(opts.max_new_tokens > 0, "generate: max_new_tokens must be positive");
  Sampler sampler(opts.temperature, opts.sampler_seed);
  GenerateResult res;

  if (opts.use_kv_cache) {
    ContiguousKvStore kv(model.kv_dims());
    // Batched prefill: one token-parallel pass over the prompt instead of
    // prompt.size() GEMV sweeps. Logits are bit-identical to the token
    // loop; forward_passes still counts one pass per prompt token (the
    // cost model the recompute-ratio accounting is built on).
    std::vector<float> logits = model.prefill(prompt, kv);
    res.forward_passes += prompt.size();
    for (std::int64_t i = 0; i < opts.max_new_tokens; ++i) {
      const TokenId next = sampler.sample(logits);
      res.tokens.push_back(next);
      if (i + 1 == opts.max_new_tokens) break;
      logits = model.forward(next, kv);
      ++res.forward_passes;
    }
    return res;
  }

  // No-cache path: every step re-runs the model over the full prefix.
  std::vector<TokenId> context(prompt.begin(), prompt.end());
  for (std::int64_t i = 0; i < opts.max_new_tokens; ++i) {
    const std::vector<float> logits = model.forward_nocache(context);
    res.forward_passes += 1;
    res.recomputed_tokens += context.size();
    const TokenId next = sampler.sample(logits);
    res.tokens.push_back(next);
    context.push_back(next);
  }
  return res;
}

namespace {

bool is_pool_exhaustion(const util::ContractViolation& e) {
  return std::strstr(e.what(), "KV pool exhausted") != nullptr;
}

}  // namespace

ServingEngine::ServingEngine(const MiniTransformer& model, Config cfg)
    : model_(model),
      cfg_(cfg),
      pool_(cfg.pool_blocks, cfg.block_size, model.kv_dims()),
      scheduler_([&] {
        sched::Scheduler::Config sc;
        sc.policy = cfg.policy;
        sc.max_batch = cfg.max_batch;
        if (cfg.allow_preemption) {
          // Optimistic admission: pool pressure is handled by eviction +
          // recompute, not by conservative reservations.
          sc.kv_capacity_tokens = 0;
        } else {
          // Discount the worst-case last-block slack per live sequence so
          // the admission decision never lets a forward hit an empty pool.
          sc.kv_capacity_tokens =
              static_cast<std::int64_t>(cfg.pool_blocks) * cfg.block_size -
              cfg.max_batch * (static_cast<std::int64_t>(cfg.block_size) - 1);
        }
        return sc;
      }()),
      sampler_(cfg.temperature) {
  require(cfg.prefill_chunk > 0, "ServingEngine: prefill_chunk must be positive");
  require(!(cfg.batched_decode && cfg.allow_preemption),
          "ServingEngine: batched_decode cannot be combined with preemption");
}

sched::RequestId ServingEngine::submit(std::vector<TokenId> prompt,
                                       std::int64_t max_new_tokens) {
  require(!prompt.empty(), "ServingEngine: empty prompt");
  const sched::RequestId id = next_id_++;
  scheduler_.submit({id, static_cast<std::int64_t>(prompt.size()), max_new_tokens, 0.0});
  prompts_.emplace(id, std::move(prompt));
  return id;
}

void ServingEngine::preempt(sched::RequestId id, Live& live) {
  require(live.kv != nullptr, "ServingEngine: preempting an evicted sequence");
  live.kv.reset();  // frees every block of this sequence
  live.preempted = true;
  ++preemptions_;
  ++preemption_counts_[id];
  obs::instant("engine.preempt", obs::Cat::kEngine, id);
  static obs::Counter& c = obs::Registry::global().counter("engine.preemptions");
  c.add(1);
}

bool ServingEngine::try_restore(sched::RequestId id, Live& live) {
  (void)id;
  obs::Span span("engine.restore", obs::Cat::kEngine, id);
  // Tokens actually fed so far: the prefilled prompt portion plus every
  // generated token except the pending (unfed) next_input.
  std::vector<TokenId> fed(live.prompt.begin(),
                           live.prompt.begin() + static_cast<std::ptrdiff_t>(live.prompt_fed));
  if (!live.generated.empty())
    fed.insert(fed.end(), live.generated.begin(), live.generated.end() - 1);

  auto kv = std::make_unique<PagedKvStore>(pool_, next_kv_id_++);
  try {
    // Replay is exactly the prefill regime: recompute the committed prefix
    // in one batched pass. On pool exhaustion the fresh store is discarded
    // whole, so the partial appends cannot leak into live state.
    if (!fed.empty()) model_.prefill(fed, *kv);
  } catch (const util::ContractViolation& e) {
    if (!is_pool_exhaustion(e)) throw;
    return false;  // still under pressure; stay preempted
  }
  recomputed_tokens_ += static_cast<std::int64_t>(fed.size());
  live.kv = std::move(kv);
  live.preempted = false;
  return true;
}

std::vector<float> ServingEngine::forward_with_preemption(sched::RequestId id,
                                                          Live& live, TokenId token) {
  for (;;) {
    try {
      return model_.forward(token, *live.kv);
    } catch (const util::ContractViolation& e) {
      if (!cfg_.allow_preemption || !is_pool_exhaustion(e)) throw;
      // Evict the youngest OTHER resident sequence (vLLM's policy);
      // if this sequence is the only resident one, evict it instead.
      auto victim = live_.end();
      for (auto it = live_.begin(); it != live_.end(); ++it) {
        if (it->first != id && it->second.kv != nullptr) victim = it;
      }
      if (victim == live_.end()) {
        preempt(id, live);
        return {};
      }
      preempt(victim->first, victim->second);
    }
  }
}

bool ServingEngine::step() {
  if (scheduler_.all_done()) return false;
  obs::Span step_span("engine.step", obs::Cat::kEngine, iterations_);
  const sched::StepPlan plan = scheduler_.plan_step();
  if (plan.empty()) return false;
  ++iterations_;
  {
    static obs::Counter& c = obs::Registry::global().counter("engine.iterations");
    c.add(1);
  }

  // Helper: feed prompt tokens (respecting chunking); returns true when the
  // prompt is complete and the first token has been sampled.
  auto feed_prompt = [&](sched::RequestId id, Live& live) -> bool {
    const std::size_t budget =
        cfg_.chunked_prefill ? static_cast<std::size_t>(cfg_.prefill_chunk)
                             : live.prompt.size();
    std::vector<float> logits;
    if (!cfg_.allow_preemption) {
      // Admission control guarantees the pool can take the chunk, so feed
      // it through the batched prefill path in one pass (bit-identical
      // logits, one weight sweep per layer instead of one per token).
      const std::size_t n =
          std::min(budget, live.prompt.size() - live.prompt_fed);
      if (n > 0) {
        logits = model_.prefill(
            std::span<const TokenId>(live.prompt).subspan(live.prompt_fed, n),
            *live.kv);
        live.prompt_fed += n;
      }
    } else {
      // Preemption needs token granularity: a mid-chunk eviction must be
      // able to stop cleanly after any token.
      std::size_t fed_now = 0;
      while (live.prompt_fed < live.prompt.size() && fed_now < budget) {
        logits = forward_with_preemption(id, live, live.prompt[live.prompt_fed]);
        if (logits.empty()) return false;  // self-preempted mid-prefill
        ++live.prompt_fed;
        ++fed_now;
      }
    }
    if (live.prompt_fed < live.prompt.size()) return false;  // more chunks needed
    if (live.generated.empty() && !logits.empty()) {
      const TokenId first = sampler_.sample(logits);
      live.generated.push_back(first);
      live.next_input = first;
      return true;
    }
    return false;
  };

  for (sched::RequestId id : plan.prefills) {
    obs::Span admit_span("engine.admit", obs::Cat::kEngine, id);
    Live live;
    live.prompt = prompts_.at(id);
    live.kv = std::make_unique<PagedKvStore>(pool_, next_kv_id_++);
    const bool produced_first = feed_prompt(id, live);
    if (produced_first) {
      const bool done = scheduler_.complete_decode_token(id);
      if (done) {
        finished_.emplace(id, live.generated);
        continue;
      }
    }
    live_.emplace(id, std::move(live));
  }

  // Batched decode: one weight-stationary pass for every plain decode
  // (bit-identical to the per-sequence loop; see BatchedTransformer).
  obs::Span decode_span("engine.decode", obs::Cat::kEngine,
                        static_cast<std::int64_t>(plan.decodes.size()));
  if (cfg_.batched_decode) {
    std::vector<sched::RequestId> plain;
    std::vector<TokenId> toks;
    std::vector<KvStore*> kv_ptrs;
    for (sched::RequestId id : plan.decodes) {
      auto it = live_.find(id);
      if (it == live_.end()) continue;
      Live& live = it->second;
      if (live.prompt_fed < live.prompt.size() || live.generated.empty()) continue;
      plain.push_back(id);
      toks.push_back(live.next_input);
      kv_ptrs.push_back(live.kv.get());
    }
    if (!plain.empty()) {
      const BatchedTransformer batched(model_.weights());
      const auto logits = batched.forward_batch(toks, kv_ptrs);
      for (std::size_t i = 0; i < plain.size(); ++i) {
        Live& live = live_.at(plain[i]);
        const TokenId next = sampler_.sample(logits[i]);
        live.generated.push_back(next);
        live.next_input = next;
        if (scheduler_.complete_decode_token(plain[i])) {
          finished_.emplace(plain[i], live.generated);
          live_.erase(plain[i]);
        }
      }
    }
    // Any remaining decode entries (mid-chunked-prefill) fall through to
    // the per-sequence loop below, which skips the ones just handled.
  }

  for (sched::RequestId id : plan.decodes) {
    auto it = live_.find(id);
    if (it == live_.end()) continue;  // finished during its prefill iteration
    Live& live = it->second;

    if (live.preempted && !try_restore(id, live)) continue;

    // Chunked prefill still in flight: feed the next chunk instead of
    // decoding this iteration.
    if (live.prompt_fed < live.prompt.size() || live.generated.empty()) {
      // (reached both with and without batched_decode)
      const bool produced_first = feed_prompt(id, live);
      if (!produced_first) continue;
      const bool done = scheduler_.complete_decode_token(id);
      if (done) {
        finished_.emplace(id, live.generated);
        live_.erase(it);
      }
      continue;
    }
    if (cfg_.batched_decode) continue;  // plain decodes already advanced above

    const std::vector<float> logits = forward_with_preemption(id, live, live.next_input);
    if (logits.empty()) continue;  // self-preempted; retry next iteration
    const TokenId next = sampler_.sample(logits);
    live.generated.push_back(next);
    live.next_input = next;
    const bool done = scheduler_.complete_decode_token(id);
    if (done) {
      finished_.emplace(id, live.generated);
      live_.erase(it);  // frees the paged blocks for waiting requests
    }
  }
  return true;
}

void ServingEngine::run_to_completion() {
  std::int64_t stall_guard = 0;
  while (!scheduler_.all_done()) {
    const std::int64_t before = iterations_;
    const std::size_t finished_before = finished_.size();
    if (!step()) break;
    const bool progressed =
        finished_.size() > finished_before || iterations_ == before;
    stall_guard = progressed ? 0 : stall_guard + 1;
    require(stall_guard < 100000, "ServingEngine: no forward progress");
  }
  require(scheduler_.all_done(), "ServingEngine: stalled before completion");
}

bool ServingEngine::finished(sched::RequestId id) const {
  return finished_.count(id) > 0;
}

const std::vector<TokenId>& ServingEngine::output(sched::RequestId id) const {
  auto it = finished_.find(id);
  require(it != finished_.end(), "ServingEngine: request not finished");
  return it->second;
}

}  // namespace llmib::engine
