#include "engine/batched.h"
#include "engine/generator.h"

#include <cstring>
#include <set>

#include "engine/tensor_ops.h"
#include "obs/obs.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

GenerateResult generate(const MiniTransformer& model, std::span<const TokenId> prompt,
                        const GenerateOptions& opts) {
  require(!prompt.empty(), "generate: empty prompt");
  require(opts.max_new_tokens > 0, "generate: max_new_tokens must be positive");
  Sampler sampler(opts.temperature, opts.sampler_seed);
  GenerateResult res;

  if (opts.use_kv_cache) {
    ContiguousKvStore kv(model.kv_dims());
    // Batched prefill: one token-parallel pass over the prompt instead of
    // prompt.size() GEMV sweeps. Logits are bit-identical to the token
    // loop; forward_passes still counts one pass per prompt token (the
    // cost model the recompute-ratio accounting is built on).
    std::vector<float> logits = model.prefill(prompt, kv);
    res.forward_passes += prompt.size();
    for (std::int64_t i = 0; i < opts.max_new_tokens; ++i) {
      const TokenId next = sampler.sample(logits);
      res.tokens.push_back(next);
      if (i + 1 == opts.max_new_tokens) break;
      logits = model.forward(next, kv);
      ++res.forward_passes;
    }
    return res;
  }

  // No-cache path: every step re-runs the model over the full prefix.
  std::vector<TokenId> context(prompt.begin(), prompt.end());
  for (std::int64_t i = 0; i < opts.max_new_tokens; ++i) {
    const std::vector<float> logits = model.forward_nocache(context);
    res.forward_passes += 1;
    res.recomputed_tokens += context.size();
    const TokenId next = sampler.sample(logits);
    res.tokens.push_back(next);
    context.push_back(next);
  }
  return res;
}

namespace {

bool is_pool_exhaustion(const util::ContractViolation& e) {
  return std::strstr(e.what(), "KV pool exhausted") != nullptr;
}

obs::Counter& prefix_lookups_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.prefix.lookups");
  return c;
}
obs::Counter& prefix_hits_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.prefix.hits");
  return c;
}
obs::Counter& prefix_hit_tokens_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.prefix.hit_tokens");
  return c;
}
obs::Counter& prefix_insertions_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.prefix.insertions");
  return c;
}
obs::Counter& prefix_evictions_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.prefix.evictions");
  return c;
}
obs::Counter& prefix_forked_blocks_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.prefix.forked_blocks");
  return c;
}

}  // namespace

ServingEngine::ServingEngine(const MiniTransformer& model, Config cfg)
    : model_(model),
      cfg_(cfg),
      pool_(cfg.pool_blocks, cfg.block_size, model.kv_dims(), cfg.kv_quant),
      scheduler_([&] {
        sched::Scheduler::Config sc;
        sc.policy = cfg.policy;
        sc.max_batch = cfg.max_batch;
        if (cfg.allow_preemption) {
          // Optimistic admission: pool pressure is handled by eviction +
          // recompute, not by conservative reservations.
          sc.kv = sched::KvBudget();
        } else {
          // Discount the worst-case last-block slack per live sequence so
          // the admission decision never lets a forward hit an empty pool.
          sc.kv = sched::KvBudget::tokens(
              static_cast<std::int64_t>(cfg.pool_blocks) * cfg.block_size -
              cfg.max_batch * (static_cast<std::int64_t>(cfg.block_size) - 1));
        }
        return sc;
      }()),
      sampler_(cfg.temperature) {
  require(cfg.prefill_chunk > 0, "ServingEngine: prefill_chunk must be positive");
  require(!(cfg.batched_decode && cfg.allow_preemption),
          "ServingEngine: batched_decode cannot be combined with preemption");
  require(cfg.prefix_cache_entries > 0,
          "ServingEngine: prefix_cache_entries must be positive");
  kv_capacity_tokens_ = scheduler_.kv_budget().effective_tokens();
}

sched::RequestId ServingEngine::submit(std::vector<TokenId> prompt,
                                       std::int64_t max_new_tokens) {
  require(!prompt.empty(), "ServingEngine: empty prompt");
  const sched::RequestId id = next_id_++;

  // Radix walk at submit time: find the longest cached prefix, then round it
  // DOWN to whole blocks (only full blocks can be forked zero-copy) and cap
  // it below the prompt length (at least one token must be prefilled to
  // produce first-token logits).
  kv::PrefixCache::EntryId hit_entry = 0;
  std::size_t usable = 0;
  if (cfg_.prefix_caching && prompt.size() > 1) {
    ++prefix_lookups_;
    prefix_lookups_counter().add(1);
    const auto m = prefix_cache_.lookup(prompt.data(), prompt.size());
    usable = std::min(m.matched, prompt.size() - 1);
    usable -= usable % cfg_.block_size;
    if (m.entry != 0 && usable > 0) hit_entry = m.entry;
  }

  scheduler_.submit({id, static_cast<std::int64_t>(prompt.size()),
                     max_new_tokens, 0.0,
                     hit_entry != 0 ? static_cast<std::int64_t>(usable) : 0});
  if (hit_entry != 0) {
    // Pin for the whole borrow: keeps the entry (and its once-charged
    // external reservation) resident until the request finishes, so the
    // scheduler's discounted footprint always has backing blocks.
    prefix_cache_.pin(hit_entry);
    pending_prefix_.emplace(id, PendingPrefix{hit_entry, usable});
    ++prefix_hits_;
    prefix_hit_tokens_ += static_cast<std::int64_t>(usable);
    prefix_hits_counter().add(1);
    prefix_hit_tokens_counter().add(static_cast<std::int64_t>(usable));
    obs::instant("engine.prefix_hit", obs::Cat::kEngine,
                 static_cast<std::int64_t>(usable));
  }
  prompts_.emplace(id, std::move(prompt));
  return id;
}

void ServingEngine::register_prefix(const std::vector<TokenId>& key,
                                    const PagedKvStore& src) {
  std::size_t len = std::min(key.size(), src.size());
  len -= len % cfg_.block_size;  // whole blocks: tail stays private, no COW
  if (len == 0) return;
  // Bounded entry count; pinned entries block eviction, in which case we
  // simply skip registration rather than grow past the cap.
  while (prefix_cache_.size() >= cfg_.prefix_cache_entries) {
    if (!evict_lru_prefix_entry()) return;
  }
  const kv::PrefixCache::EntryId entry = prefix_cache_.insert(key.data(), len);
  if (entry == 0) return;  // covered by an existing entry
  // Zero-copy: the entry's store shares `src`'s blocks via refcounts. No
  // allocation happens, so registration can never trip pool capacity.
  prefix_stores_.emplace(
      entry, std::make_unique<PagedKvStore>(pool_, next_kv_id_++, src, len));
  ++prefix_insertions_;
  prefix_insertions_counter().add(1);
  obs::instant("engine.prefix_insert", obs::Cat::kEngine,
               static_cast<std::int64_t>(len));
}

void ServingEngine::maybe_register_prompt(Live& live) {
  if (!cfg_.prefix_caching || live.prefix_registered) return;
  if (live.prompt_fed < live.prompt.size() || live.kv == nullptr) return;
  live.prefix_registered = true;
  register_prefix(live.prompt, *live.kv);
}

void ServingEngine::release_prefix_lease(Live& live) {
  if (live.prefix_lease == 0) return;
  prefix_cache_.unpin(live.prefix_lease);
  live.prefix_lease = 0;
}

bool ServingEngine::evict_lru_prefix_entry() {
  const auto victim = prefix_cache_.evict_lru();
  if (!victim) return false;
  // Destroying the store decrements refcounts; blocks shared with live
  // sequences (or other entries) survive — only exclusively-held ones free.
  prefix_stores_.erase(*victim);
  ++prefix_evictions_;
  prefix_evictions_counter().add(1);
  obs::instant("engine.prefix_evict", obs::Cat::kEngine,
               static_cast<std::int64_t>(*victim));
  return true;
}

std::int64_t ServingEngine::prefix_cache_reserved_tokens() const {
  // Entries routinely share blocks with each other (a conversation entry
  // extends a prompt entry), so count distinct blocks, not per-entry sums.
  std::set<kv::BlockId> blocks;
  const auto& alloc = pool_.allocator();
  for (const auto& [entry, store] : prefix_stores_) {
    const auto& table = alloc.block_table(store->seq_id());
    blocks.insert(table.begin(), table.end());
  }
  return static_cast<std::int64_t>(blocks.size()) *
         static_cast<std::int64_t>(cfg_.block_size);
}

void ServingEngine::finish_request(sched::RequestId id, Live& live) {
  if (cfg_.prefix_caching && live.kv != nullptr) {
    // Conversation entry: everything actually fed (prompt + generated minus
    // the pending next_input) keys the history for the follow-up turn.
    std::vector<TokenId> fed = live.prompt;
    if (!live.generated.empty())
      fed.insert(fed.end(), live.generated.begin(), live.generated.end() - 1);
    register_prefix(fed, *live.kv);
  }
  release_prefix_lease(live);
  finished_.emplace(id, live.generated);
}

bool ServingEngine::cancel(sched::RequestId id) {
  if (finished_.count(id) > 0) return false;
  // A still-waiting borrower holds only the submit-time pin; it must die
  // with the request or the entry becomes unevictable forever.
  const auto pend = pending_prefix_.find(id);
  if (pend != pending_prefix_.end()) {
    prefix_cache_.unpin(pend->second.entry);
    pending_prefix_.erase(pend);
  }
  const auto it = live_.find(id);
  if (it != live_.end()) {
    release_prefix_lease(it->second);
    live_.erase(it);  // frees the paged blocks
  }
  if (!scheduler_.cancel(id)) return false;
  prompts_.erase(id);
  return true;
}

void ServingEngine::relieve_cache_pressure() {
  if (!cfg_.prefix_caching) return;
  scheduler_.set_external_reserved_tokens(prefix_cache_reserved_tokens());
  if (kv_capacity_tokens_ <= 0) return;  // preemption mode: pressure handled there
  // Cached-but-idle KV yields to admission demand: evict LRU entries until
  // the next waiting request fits (or nothing unpinned remains).
  while (scheduler_.waiting_requests() > 0 &&
         scheduler_.live_sequences() < cfg_.max_batch) {
    const std::int64_t need = scheduler_.next_waiting_footprint();
    if (scheduler_.reserved_kv_tokens() +
            scheduler_.external_reserved_tokens() + need <=
        kv_capacity_tokens_)
      break;
    if (!evict_lru_prefix_entry()) break;
    scheduler_.set_external_reserved_tokens(prefix_cache_reserved_tokens());
  }
}

ServingEngine::PrefixStats ServingEngine::prefix_stats() const {
  PrefixStats s;
  s.lookups = prefix_lookups_;
  s.hits = prefix_hits_;
  s.hit_tokens = prefix_hit_tokens_;
  s.insertions = prefix_insertions_;
  s.evictions = prefix_evictions_;
  s.forked_blocks = prefix_forked_blocks_;
  s.entries = prefix_cache_.size();
  s.resident_tokens = prefix_cache_reserved_tokens();
  return s;
}

void ServingEngine::preempt(sched::RequestId id, Live& live) {
  require(live.kv != nullptr, "ServingEngine: preempting an evicted sequence");
  live.kv.reset();  // frees every block of this sequence
  // The borrowed prefix is gone with the blocks; restore replays from
  // scratch, so the cache entry no longer needs to outlive this request.
  release_prefix_lease(live);
  live.preempted = true;
  ++preemptions_;
  ++preemption_counts_[id];
  obs::instant("engine.preempt", obs::Cat::kEngine, id);
  static obs::Counter& c = obs::Registry::global().counter("engine.preemptions");
  c.add(1);
}

bool ServingEngine::try_restore(sched::RequestId id, Live& live) {
  (void)id;
  obs::Span span("engine.restore", obs::Cat::kEngine, id);
  // Tokens actually fed so far: the prefilled prompt portion plus every
  // generated token except the pending (unfed) next_input.
  std::vector<TokenId> fed(live.prompt.begin(),
                           live.prompt.begin() + static_cast<std::ptrdiff_t>(live.prompt_fed));
  if (!live.generated.empty())
    fed.insert(fed.end(), live.generated.begin(), live.generated.end() - 1);

  for (;;) {
    auto kv = std::make_unique<PagedKvStore>(pool_, next_kv_id_++);
    try {
      // Replay is exactly the prefill regime: recompute the committed prefix
      // in one batched pass. On pool exhaustion the fresh store is discarded
      // whole, so the partial appends cannot leak into live state.
      if (!fed.empty()) model_.prefill(fed, *kv);
    } catch (const util::ContractViolation& e) {
      if (!is_pool_exhaustion(e)) throw;
      kv.reset();
      // Idle cache residency yields before we give up on the restore.
      if (cfg_.prefix_caching && evict_lru_prefix_entry()) continue;
      return false;  // still under pressure; stay preempted
    }
    recomputed_tokens_ += static_cast<std::int64_t>(fed.size());
    live.kv = std::move(kv);
    live.preempted = false;
    return true;
  }
}

std::vector<float> ServingEngine::forward_with_preemption(sched::RequestId id,
                                                          Live& live, TokenId token) {
  for (;;) {
    try {
      return model_.forward(token, *live.kv);
    } catch (const util::ContractViolation& e) {
      if (!cfg_.allow_preemption || !is_pool_exhaustion(e)) throw;
      // Cache entries are the cheapest thing to sacrifice: they cost no
      // recompute for anyone live. Evict those before preempting a peer.
      if (cfg_.prefix_caching && evict_lru_prefix_entry()) continue;
      // Evict the youngest OTHER resident sequence (vLLM's policy);
      // if this sequence is the only resident one, evict it instead.
      auto victim = live_.end();
      for (auto it = live_.begin(); it != live_.end(); ++it) {
        if (it->first != id && it->second.kv != nullptr) victim = it;
      }
      if (victim == live_.end()) {
        preempt(id, live);
        return {};
      }
      preempt(victim->first, victim->second);
    }
  }
}

bool ServingEngine::step() {
  if (scheduler_.all_done()) return false;
  obs::Span step_span("engine.step", obs::Cat::kEngine, iterations_);
  relieve_cache_pressure();
  const sched::StepPlan plan = scheduler_.plan_step();
  if (plan.empty()) return false;
  ++iterations_;
  {
    static obs::Counter& c = obs::Registry::global().counter("engine.iterations");
    c.add(1);
  }

  // Helper: feed prompt tokens (respecting chunking); returns true when the
  // prompt is complete and the first token has been sampled.
  auto feed_prompt = [&](sched::RequestId id, Live& live) -> bool {
    const std::size_t budget =
        cfg_.chunked_prefill ? static_cast<std::size_t>(cfg_.prefill_chunk)
                             : live.prompt.size();
    std::vector<float> logits;
    if (!cfg_.allow_preemption) {
      // Admission control guarantees the pool can take the chunk, so feed
      // it through the batched prefill path in one pass (bit-identical
      // logits, one weight sweep per layer instead of one per token).
      const std::size_t n =
          std::min(budget, live.prompt.size() - live.prompt_fed);
      if (n > 0) {
        logits = model_.prefill(
            std::span<const TokenId>(live.prompt).subspan(live.prompt_fed, n),
            *live.kv);
        live.prompt_fed += n;
      }
    } else {
      // Preemption needs token granularity: a mid-chunk eviction must be
      // able to stop cleanly after any token.
      std::size_t fed_now = 0;
      while (live.prompt_fed < live.prompt.size() && fed_now < budget) {
        logits = forward_with_preemption(id, live, live.prompt[live.prompt_fed]);
        if (logits.empty()) return false;  // self-preempted mid-prefill
        ++live.prompt_fed;
        ++fed_now;
      }
    }
    if (live.prompt_fed < live.prompt.size()) return false;  // more chunks needed
    maybe_register_prompt(live);
    if (live.generated.empty() && !logits.empty()) {
      const TokenId first = sampler_.sample(logits);
      live.generated.push_back(first);
      live.next_input = first;
      return true;
    }
    return false;
  };

  for (sched::RequestId id : plan.prefills) {
    obs::Span admit_span("engine.admit", obs::Cat::kEngine, id);
    Live live;
    live.prompt = prompts_.at(id);
    const auto pend = pending_prefix_.find(id);
    if (pend != pending_prefix_.end()) {
      // Prefix hit: fork the cached entry's blocks instead of recomputing
      // them. The fork is block-aligned, so decode appends never COW the
      // shared prefix; prefill resumes at position `tokens`.
      const PendingPrefix pm = pend->second;
      pending_prefix_.erase(pend);
      const auto& parent = prefix_stores_.at(pm.entry);  // pinned => resident
      live.kv = std::make_unique<PagedKvStore>(pool_, next_kv_id_++, *parent,
                                               pm.tokens);
      live.prompt_fed = pm.tokens;
      live.prefix_lease = pm.entry;
      const auto nblocks =
          static_cast<std::int64_t>(pm.tokens / cfg_.block_size);
      prefix_forked_blocks_ += nblocks;
      prefix_forked_blocks_counter().add(nblocks);
      obs::instant("engine.prefix_fork", obs::Cat::kEngine, nblocks);
    } else {
      live.kv = std::make_unique<PagedKvStore>(pool_, next_kv_id_++);
    }
    const bool produced_first = feed_prompt(id, live);
    if (produced_first) {
      const bool done = scheduler_.complete_decode_token(id);
      if (done) {
        finish_request(id, live);
        continue;
      }
    }
    live_.emplace(id, std::move(live));
  }

  // Batched decode: one weight-stationary pass for every plain decode
  // (bit-identical to the per-sequence loop; see BatchedTransformer).
  obs::Span decode_span("engine.decode", obs::Cat::kEngine,
                        static_cast<std::int64_t>(plan.decodes.size()));
  if (cfg_.batched_decode) {
    std::vector<sched::RequestId> plain;
    std::vector<TokenId> toks;
    std::vector<KvStore*> kv_ptrs;
    for (sched::RequestId id : plan.decodes) {
      auto it = live_.find(id);
      if (it == live_.end()) continue;
      Live& live = it->second;
      if (live.prompt_fed < live.prompt.size() || live.generated.empty()) continue;
      plain.push_back(id);
      toks.push_back(live.next_input);
      kv_ptrs.push_back(live.kv.get());
    }
    if (!plain.empty()) {
      const BatchedTransformer batched(model_.weights());
      const auto logits = batched.forward_batch(toks, kv_ptrs);
      for (std::size_t i = 0; i < plain.size(); ++i) {
        Live& live = live_.at(plain[i]);
        const TokenId next = sampler_.sample(logits[i]);
        live.generated.push_back(next);
        live.next_input = next;
        if (scheduler_.complete_decode_token(plain[i])) {
          finish_request(plain[i], live);
          live_.erase(plain[i]);
        }
      }
    }
    // Any remaining decode entries (mid-chunked-prefill) fall through to
    // the per-sequence loop below, which skips the ones just handled.
  }

  for (sched::RequestId id : plan.decodes) {
    auto it = live_.find(id);
    if (it == live_.end()) continue;  // finished during its prefill iteration
    Live& live = it->second;

    if (live.preempted && !try_restore(id, live)) continue;

    // Chunked prefill still in flight: feed the next chunk instead of
    // decoding this iteration.
    if (live.prompt_fed < live.prompt.size() || live.generated.empty()) {
      // (reached both with and without batched_decode)
      const bool produced_first = feed_prompt(id, live);
      if (!produced_first) continue;
      const bool done = scheduler_.complete_decode_token(id);
      if (done) {
        finish_request(id, live);
        live_.erase(it);
      }
      continue;
    }
    if (cfg_.batched_decode) continue;  // plain decodes already advanced above

    const std::vector<float> logits = forward_with_preemption(id, live, live.next_input);
    if (logits.empty()) continue;  // self-preempted; retry next iteration
    const TokenId next = sampler_.sample(logits);
    live.generated.push_back(next);
    live.next_input = next;
    const bool done = scheduler_.complete_decode_token(id);
    if (done) {
      finish_request(id, live);
      live_.erase(it);  // frees the paged blocks for waiting requests
    }
  }
  return true;
}

void ServingEngine::run_to_completion() {
  std::int64_t stall_guard = 0;
  while (!scheduler_.all_done()) {
    const std::int64_t before = iterations_;
    const std::size_t finished_before = finished_.size();
    if (!step()) break;
    const bool progressed =
        finished_.size() > finished_before || iterations_ == before;
    stall_guard = progressed ? 0 : stall_guard + 1;
    require(stall_guard < 100000, "ServingEngine: no forward progress");
  }
  require(scheduler_.all_done(), "ServingEngine: stalled before completion");
}

bool ServingEngine::finished(sched::RequestId id) const {
  return finished_.count(id) > 0;
}

const std::vector<TokenId>& ServingEngine::output(sched::RequestId id) const {
  auto it = finished_.find(id);
  require(it != finished_.end(), "ServingEngine: request not finished");
  return it->second;
}

}  // namespace llmib::engine
