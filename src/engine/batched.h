#pragma once

#include <memory>
#include <span>
#include <vector>

#include "engine/model.h"
#include "util/thread_pool.h"

namespace llmib::engine {

/// Truly batched decode over the mini transformer: one iteration advances
/// every sequence by one token, with all linear projections executed as
/// weight-stationary matrix-matrix products (each weight row is read ONCE
/// and applied to the whole batch). This is the actual mechanism behind
/// the paper's Fig. 1a — decode is weight-bandwidth-bound, and batching
/// amortizes the weight traffic — made measurable on the CPU engine
/// (`bench/engine_batch_scaling`).
///
/// Numerics: the per-(row, sequence) accumulation order is identical to
/// MiniTransformer's GEMV, so batched logits are BIT-IDENTICAL to running
/// each sequence through MiniTransformer::forward — the equivalence the
/// tests pin down. Attention runs per sequence (contexts differ); MoE
/// sequences are grouped by routed expert so each touched expert's weights
/// stream once per step (the E_touched(B) effect of DESIGN.md).
class BatchedTransformer {
 public:
  /// `pool` (optional, not owned, must outlive the transformer) enables
  /// sequence-parallel stepping: the per-sequence stages (norms, rope, KV
  /// append, attention) fan out across the pool's workers, one task per
  /// sequence. The weight-stationary matmuls stay serial — their whole
  /// point is one pass over the weights. Each sequence's computation is
  /// untouched, so logits remain bit-identical with or without a pool.
  explicit BatchedTransformer(const TransformerWeights& weights,
                              util::ThreadPool* pool = nullptr);

  const models::ModelConfig& config() const { return weights_.config; }

  /// Advance each sequence i by token tokens[i] (appending to kvs[i]) and
  /// return each sequence's next-token logits. tokens.size() must equal
  /// kvs.size() and be >= 1. KV stores may be at different lengths.
  std::vector<std::vector<float>> forward_batch(std::span<const TokenId> tokens,
                                                std::span<KvStore* const> kvs) const;

 private:
  /// fn(b) for every sequence b — on the pool when one was supplied.
  void for_each_sequence(std::size_t batch,
                         const std::function<void(std::size_t)>& fn) const;

  const TransformerWeights& weights_;
  util::ThreadPool* pool_ = nullptr;
  std::shared_ptr<const RopeTable> rope_;  ///< shared per (head_dim, theta)
};

// batched_matmul (the weight-stationary [batch x cols] -> [batch x rows]
// matmul these forward passes are built on) lives in engine/tensor_ops.h
// next to matvec/fused_qkv; it routes through the same dispatched kernel
// layer (docs/KERNELS.md), whose register-tiled backends block over rows
// and batch so weight rows stay in registers across the batch.

}  // namespace llmib::engine
