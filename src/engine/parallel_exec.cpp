#include "engine/parallel_exec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "engine/attention.h"
#include "engine/tensor_ops.h"
#include "obs/obs.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

const char* gather_mode_name(GatherMode m) {
  switch (m) {
    case GatherMode::kAuto: return "auto";
    case GatherMode::kDirect: return "direct";
    case GatherMode::kChunked: return "chunked";
  }
  return "?";
}

ShardedTransformer::ShardedTransformer(const TransformerWeights& weights, int tp,
                                       int ep)
    : weights_(weights),
      tp_(tp),
      ep_(ep),
      rope_(RopeTable::shared(static_cast<std::size_t>(weights.config.head_dim()),
                              static_cast<std::size_t>(weights.config.max_seq_len))) {
  const auto& cfg = weights.config;
  require(tp >= 1 && ep >= 1, "ShardedTransformer: degrees must be >= 1");
  require(tp == 1 || ep == 1, "ShardedTransformer: combine tp or ep, not both");
  if (tp > 1) {
    require(cfg.ffn == models::FfnKind::kDense,
            "ShardedTransformer: tp > 1 supports dense models (use ep for MoE)");
    require(cfg.n_heads % tp == 0, "ShardedTransformer: tp must divide heads");
    require(cfg.n_kv_heads % tp == 0, "ShardedTransformer: tp must divide KV heads");
    require(cfg.ffn_intermediate % tp == 0,
            "ShardedTransformer: tp must divide ffn_intermediate");
    require(cfg.kv_heads_per_layer.empty(),
            "ShardedTransformer: variable-GQA models unsupported with tp");
  }
  if (ep > 1) {
    require(cfg.ffn == models::FfnKind::kMoE, "ShardedTransformer: ep requires MoE");
    require(cfg.n_experts % ep == 0, "ShardedTransformer: ep must divide experts");
  }

  const int shards = tp_ * ep_;
  for (int s = 0; s < shards; ++s)
    shard_kv_.push_back(std::make_unique<ContiguousKvStore>(
        shard_kv_dims(static_cast<std::size_t>(s))));
  // The pool lives as long as the executor: workers are created once here
  // and forward() only dispatches — it never spawns a thread.
  if (shards > 1) pool_ = std::make_unique<util::ThreadPool>(shards);

  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  attn_gather_.resize(static_cast<std::size_t>(cfg.n_heads) *
                      static_cast<std::size_t>(cfg.head_dim()));
  if (cfg.ffn == models::FfnKind::kDense)
    inter_gather_.resize(static_cast<std::size_t>(cfg.ffn_intermediate));
  proj_.resize(hidden);
  delta_.resize(hidden);
  gather_scratch_.resize(hidden);
}

GatherMode ShardedTransformer::gather_mode_for(std::size_t gathered_bytes) const {
  if (gather_mode_ != GatherMode::kAuto) return gather_mode_;
  if (tp_ * ep_ <= 1) return GatherMode::kDirect;
  // Ring-family algorithms are exactly the chunk-and-rotate structure the
  // two-stage projection mirrors; the latency-bound picks map to direct.
  const parallel::CollectiveAlgo algo =
      selector_.choose(parallel::CollectiveOp::kAllGather,
                       static_cast<double>(gathered_bytes), tp_ * ep_);
  return (algo == parallel::CollectiveAlgo::kRing ||
          algo == parallel::CollectiveAlgo::kPipelinedRing)
             ? GatherMode::kChunked
             : GatherMode::kDirect;
}

std::vector<std::size_t> ShardedTransformer::shard_kv_dims(std::size_t s) const {
  const auto hidden = static_cast<std::size_t>(weights_.config.hidden_size);
  std::vector<std::size_t> dims;
  dims.reserve(weights_.layers.size());
  for (const auto& l : weights_.layers) {
    const std::size_t full = l.wk.size() / hidden;
    // TP shards KV heads; EP replicates attention, and only shard 0 runs
    // it, so non-owners allocate nothing (and report nothing — the stores
    // themselves are the single source of truth for kv_floats_per_shard).
    if (tp_ > 1) {
      dims.push_back(full / static_cast<std::size_t>(tp_));
    } else {
      dims.push_back(s == 0 ? full : 0);
    }
  }
  return dims;
}

void ShardedTransformer::reset() {
  for (std::size_t s = 0; s < shard_kv_.size(); ++s)
    shard_kv_[s] = std::make_unique<ContiguousKvStore>(shard_kv_dims(s));
  tokens_ = 0;
}

std::size_t ShardedTransformer::context_size() const { return tokens_; }

std::vector<std::size_t> ShardedTransformer::kv_floats_per_shard() const {
  std::vector<std::size_t> out;
  out.reserve(shard_kv_.size());
  for (const auto& kv : shard_kv_) out.push_back(kv->stored_floats());
  return out;
}

std::vector<util::ThreadPool::WorkerStats> ShardedTransformer::pool_stats() const {
  if (!pool_) return {};
  return pool_->worker_stats();
}

void ShardedTransformer::dispatch(const std::function<void(std::size_t)>& fn) {
  const auto shards = static_cast<std::size_t>(tp_ * ep_);
  obs::Span span("engine.shard_dispatch", obs::Cat::kEngine,
                 static_cast<std::int64_t>(shards));
  if (pool_) {
    pool_->run(shards, [&fn](std::size_t s) {
      obs::Span shard_span("engine.shard", obs::Cat::kEngine,
                           static_cast<std::int64_t>(s));
      fn(s);
    });
  } else {
    fn(0);
  }
}

void ShardedTransformer::attention_slice(int layer, std::size_t s,
                                         std::span<const float> normed,
                                         std::span<float> gathered) {
  const auto& cfg = weights_.config;
  const auto& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto head_dim = static_cast<std::size_t>(cfg.head_dim());
  const auto n_heads_total = static_cast<std::size_t>(cfg.n_heads);

  // EP replicates attention: shard 0 computes every head; the others have
  // no work in this stage (they join again for the row-parallel output
  // projection, which reads the shared gather buffer).
  if (ep_ > 1 && s != 0) return;
  const std::size_t shards = tp_ > 1 ? static_cast<std::size_t>(tp_) : 1;
  const std::size_t heads = n_heads_total / shards;
  const std::size_t kv_dim_total = lw.wk.size() / hidden;
  const std::size_t kv_heads = kv_dim_total / head_dim / shards;

  const std::size_t q_rows = heads * head_dim;
  const std::size_t kv_rows = kv_heads * head_dim;
  const std::size_t q_off = s * q_rows;
  const std::size_t kv_off = s * kv_rows;

  // Worker-local scratch: pool workers persist for the executor's lifetime,
  // so these buffers are allocated once per shard, not once per token.
  AttnScratch& scratch = AttnScratch::local();
  auto q = scratch_span(scratch.q, q_rows);
  auto k = scratch_span(scratch.k, kv_rows);
  auto v = scratch_span(scratch.v, kv_rows);
  matvec(std::span<const float>(lw.wq).subspan(q_off * hidden, q_rows * hidden),
         normed, q, q_rows, hidden);
  matvec(std::span<const float>(lw.wk).subspan(kv_off * hidden, kv_rows * hidden),
         normed, k, kv_rows, hidden);
  matvec(std::span<const float>(lw.wv).subspan(kv_off * hidden, kv_rows * hidden),
         normed, v, kv_rows, hidden);

  const std::size_t pos = tokens_;
  for (std::size_t h = 0; h < heads; ++h)
    rope(q.subspan(h * head_dim, head_dim), pos, *rope_);
  for (std::size_t h = 0; h < kv_heads; ++h)
    rope(k.subspan(h * head_dim, head_dim), pos, *rope_);

  KvStore& kv = *shard_kv_[s];
  require(kv.append(layer, k, v), "ShardedTransformer: KV append failed");
  // Same sliding-window rule as the serial engine (equivalence invariant).
  attend(q, gathered.subspan(q_off, q_rows), kv, layer, pos, pos + 1, nullptr,
         kv_rows, head_dim, cfg.sliding_window, scratch);
}

void ShardedTransformer::ffn_inter_slice(int layer, std::size_t s,
                                         std::span<const float> normed,
                                         std::span<float> gathered) {
  const auto& cfg = weights_.config;
  const auto& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto inter_total = static_cast<std::size_t>(cfg.ffn_intermediate);
  const auto shards = static_cast<std::size_t>(tp_);
  const std::size_t rows = inter_total / shards;
  const std::size_t row_off = s * rows;

  auto gate = gathered.subspan(row_off, rows);
  std::vector<float> up(rows);
  matvec(std::span<const float>(lw.w_gate[0]).subspan(row_off * hidden, rows * hidden),
         normed, gate, rows, hidden);
  matvec(std::span<const float>(lw.w_up[0]).subspan(row_off * hidden, rows * hidden),
         normed, up, rows, hidden);
  silu(gate);
  for (std::size_t i = 0; i < rows; ++i) gate[i] *= up[i];
}

void ShardedTransformer::expert_down(int layer, std::size_t expert, float weight,
                                     std::span<const float> normed,
                                     std::span<float> out) const {
  const auto& cfg = weights_.config;
  const auto& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto inter = static_cast<std::size_t>(cfg.ffn_intermediate);

  std::vector<float> gate(inter), up(inter), down(hidden);
  matvec(lw.w_gate[expert], normed, gate, inter, hidden);
  matvec(lw.w_up[expert], normed, up, inter, hidden);
  silu(gate);
  for (std::size_t i = 0; i < inter; ++i) gate[i] *= up[i];
  matvec(lw.w_down[expert], gate, down, hidden, inter);
  for (std::size_t i = 0; i < hidden; ++i) out[i] = weight * down[i];
}

void ShardedTransformer::project_rows(std::span<const float> w,
                                      std::span<const float> x, std::span<float> y,
                                      std::size_t row_begin, std::size_t row_end,
                                      std::size_t cols) const {
  // Row slice of matvec(): each output row runs through the SAME dispatched
  // dot kernel as the serial engine (engine/kernels), so y matches the
  // serial engine bitwise whatever backend is active.
  for (std::size_t r = row_begin; r < row_end; ++r)
    y[r] = dot(std::span<const float>(w).subspan(r * cols, cols), x.first(cols));
}

void ShardedTransformer::project_scheduled(std::span<const float> w,
                                           std::span<const float> x,
                                           std::size_t cols) {
  const auto shards = static_cast<std::size_t>(tp_ * ep_);
  const std::size_t hidden = proj_.size();
  const std::size_t row_base = hidden / shards;
  const std::size_t row_rem = hidden % shards;
  auto row_range = [&](std::size_t s) {
    const std::size_t begin = s * row_base + std::min(s, row_rem);
    return std::pair<std::size_t, std::size_t>(
        begin, begin + row_base + (s < row_rem ? 1 : 0));
  };

  if (shards > 1 &&
      gather_mode_for(x.size() * sizeof(float)) == GatherMode::kChunked) {
    // Ring reduce-scatter analog: each shard produces its owned row slice in
    // ring-rotated sub-chunks (chunk (s+1+step) % shards at step `step`, the
    // rotation a chunked ring walks) into the private scratch buffer. Rows
    // are disjoint across shards and each row is the same full-width dot as
    // the serial engine, so re-ordering is bitwise-free.
    {
      obs::Span rs("engine.gather.reduce_scatter", obs::Cat::kEngine,
                   static_cast<std::int64_t>(shards));
      dispatch([&](std::size_t s) {
        const auto [r0, r1] = row_range(s);
        const std::size_t n = r1 - r0;
        if (n == 0) return;
        const std::size_t chunk = (n + shards - 1) / shards;
        for (std::size_t step = 0; step < shards; ++step) {
          const std::size_t b = (s + 1 + step) % shards;
          const std::size_t c0 = r0 + std::min(n, b * chunk);
          const std::size_t c1 = r0 + std::min(n, (b + 1) * chunk);
          if (c0 < c1) project_rows(w, x, gather_scratch_, c0, c1, cols);
        }
      });
    }
    // Allgather: every shard publishes its reduced slice to the shared
    // destination in a second fork-join stage.
    obs::Span ag("engine.gather.allgather", obs::Cat::kEngine,
                 static_cast<std::int64_t>(shards));
    dispatch([&](std::size_t s) {
      const auto [r0, r1] = row_range(s);
      std::copy(gather_scratch_.begin() + static_cast<std::ptrdiff_t>(r0),
                gather_scratch_.begin() + static_cast<std::ptrdiff_t>(r1),
                proj_.begin() + static_cast<std::ptrdiff_t>(r0));
    });
  } else {
    // Direct gather: one stage, shards write the shared destination at
    // disjoint row ranges.
    dispatch([&](std::size_t s) {
      const auto [r0, r1] = row_range(s);
      project_rows(w, x, proj_, r0, r1, cols);
    });
  }
}

std::vector<float> ShardedTransformer::forward(TokenId token) {
  const auto& cfg = weights_.config;
  require(token >= 0 && token < cfg.vocab_size, "ShardedTransformer: token out of range");
  require(static_cast<std::int64_t>(tokens_) < static_cast<std::int64_t>(cfg.max_seq_len),
          "ShardedTransformer: context exceeds max_seq_len");
  if (fault_hook_) {
    // Injection barrier: every shard runs the hook on its worker before any
    // KV append or scratch write, so a throwing hook leaves the step fully
    // retryable (tokens_ and every shard KV are untouched).
    const std::size_t step = tokens_;
    dispatch([&](std::size_t s) { fault_hook_(s, step); });
  }
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const std::size_t q_dim_total = attn_gather_.size();

  std::vector<float> x(
      weights_.embedding.begin() +
          static_cast<std::ptrdiff_t>(static_cast<std::size_t>(token) * hidden),
      weights_.embedding.begin() +
          static_cast<std::ptrdiff_t>((static_cast<std::size_t>(token) + 1) * hidden));
  std::vector<float> normed(hidden);

  for (int l = 0; l < cfg.n_layers; ++l) {
    const auto& lw = weights_.layers[static_cast<std::size_t>(l)];

    // ---- attention: slice stage, barrier, projection stage ----------------
    rmsnorm(x, lw.attn_norm, normed);
    dispatch([&](std::size_t s) { attention_slice(l, s, normed, attn_gather_); });
    project_scheduled(lw.wo, attn_gather_, q_dim_total);
    for (std::size_t i = 0; i < hidden; ++i) x[i] += proj_[i];

    // ---- FFN ---------------------------------------------------------------
    rmsnorm(x, lw.ffn_norm, normed);
    if (cfg.ffn == models::FfnKind::kDense) {
      dispatch([&](std::size_t s) { ffn_inter_slice(l, s, normed, inter_gather_); });
      project_scheduled(lw.w_down[0], inter_gather_, inter_gather_.size());
      // Mirror the serial engine's zero-init + weighted accumulate exactly.
      for (std::size_t i = 0; i < hidden; ++i) {
        delta_[i] = 0.0f;
        delta_[i] += 1.0f * proj_[i];
        x[i] += delta_[i];
      }
    } else {
      // MoE: route once on the owner thread (bitwise the serial router),
      // then each shard computes the selected experts it owns.
      const auto n_experts = static_cast<std::size_t>(cfg.n_experts);
      std::vector<float> router_scores(n_experts);
      matvec(lw.router, normed, router_scores, n_experts, hidden);
      std::vector<std::size_t> order(n_experts);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return router_scores[a] > router_scores[b];
                       });
      const auto k = static_cast<std::size_t>(cfg.experts_active);
      std::vector<float> top(k);
      for (std::size_t i = 0; i < k; ++i) top[i] = router_scores[order[i]];
      softmax(top);

      std::vector<float> slot_out(k * hidden);
      dispatch([&](std::size_t s) {
        for (std::size_t i = 0; i < k; ++i) {
          if (order[i] % static_cast<std::size_t>(ep_) != s) continue;
          expert_down(l, order[i], top[i],
                      normed, std::span<float>(slot_out).subspan(i * hidden, hidden));
        }
      });
      // Accumulate in routing order — the serial engine's expert order.
      for (std::size_t i = 0; i < hidden; ++i) delta_[i] = 0.0f;
      for (std::size_t i = 0; i < k; ++i) {
        const float* slot = slot_out.data() + i * hidden;
        for (std::size_t j = 0; j < hidden; ++j) delta_[j] += slot[j];
      }
      for (std::size_t i = 0; i < hidden; ++i) x[i] += delta_[i];
    }
  }
  ++tokens_;

  rmsnorm(x, weights_.final_norm, normed);
  std::vector<float> logits(static_cast<std::size_t>(cfg.vocab_size));
  matvec(weights_.lm_head, normed, logits, static_cast<std::size_t>(cfg.vocab_size),
         hidden);
  return logits;
}

void ShardedTransformer::attention_slice_prefill(int layer, std::size_t s,
                                                 std::size_t T,
                                                 std::span<const float> normed,
                                                 std::span<float> gathered,
                                                 std::vector<float>& chunk_k,
                                                 std::vector<float>& chunk_v) {
  const auto& cfg = weights_.config;
  const auto& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto head_dim = static_cast<std::size_t>(cfg.head_dim());
  const auto n_heads_total = static_cast<std::size_t>(cfg.n_heads);
  const std::size_t q_dim_total = n_heads_total * head_dim;

  if (ep_ > 1 && s != 0) return;
  const std::size_t shards = tp_ > 1 ? static_cast<std::size_t>(tp_) : 1;
  const std::size_t heads = n_heads_total / shards;
  const std::size_t kv_dim_total = lw.wk.size() / hidden;
  const std::size_t kv_heads = kv_dim_total / head_dim / shards;

  const std::size_t q_rows = heads * head_dim;
  const std::size_t kv_rows = kv_heads * head_dim;
  const std::size_t q_off = s * q_rows;
  const std::size_t kv_off = s * kv_rows;

  // Token-parallel projections over this shard's head slice: each sharded
  // weight row streams once for the whole chunk.
  chunk_k.resize(T * kv_rows);
  chunk_v.resize(T * kv_rows);
  std::vector<float> q(T * q_rows);
  batched_matmul(std::span<const float>(lw.wq).subspan(q_off * hidden, q_rows * hidden),
                 normed, q, q_rows, hidden, T);
  batched_matmul(std::span<const float>(lw.wk).subspan(kv_off * hidden, kv_rows * hidden),
                 normed, chunk_k, kv_rows, hidden, T);
  batched_matmul(std::span<const float>(lw.wv).subspan(kv_off * hidden, kv_rows * hidden),
                 normed, chunk_v, kv_rows, hidden, T);

  const std::size_t base = tokens_;
  for (std::size_t t = 0; t < T; ++t) {
    auto q_t = std::span<float>(q).subspan(t * q_rows, q_rows);
    auto k_t = std::span<float>(chunk_k).subspan(t * kv_rows, kv_rows);
    for (std::size_t h = 0; h < heads; ++h)
      rope(q_t.subspan(h * head_dim, head_dim), base + t, *rope_);
    for (std::size_t h = 0; h < kv_heads; ++h)
      rope(k_t.subspan(h * head_dim, head_dim), base + t, *rope_);
  }

  // Causal attention per chunk token: positions below `base` come from this
  // shard's store, chunk positions from the local buffers (the store only
  // accepts token-major appends, which happen after the whole chunk).
  const KvStore& kv = *shard_kv_[s];
  AttnScratch& scratch = AttnScratch::local();
  const KvRun chunk{chunk_k.data(), chunk_v.data(), T};
  for (std::size_t t = 0; t < T; ++t)
    attend(std::span<const float>(q).subspan(t * q_rows, q_rows),
           gathered.subspan(t * q_dim_total + q_off, q_rows), kv, layer,
           base + t, base, &chunk, kv_rows, head_dim, cfg.sliding_window,
           scratch);
}

std::vector<float> ShardedTransformer::prefill(std::span<const TokenId> tokens) {
  const auto& cfg = weights_.config;
  require(!tokens.empty(), "prefill: empty chunk");
  // MoE routing and fault-hook retry both need token granularity; a
  // one-token chunk IS the decode step.
  if (tokens.size() == 1 || fault_hook_ || cfg.ffn != models::FfnKind::kDense) {
    std::vector<float> logits;
    for (TokenId t : tokens) logits = forward(t);
    return logits;
  }

  const std::size_t T = tokens.size();
  const std::size_t base = tokens_;
  require(static_cast<std::int64_t>(base + T) <=
              static_cast<std::int64_t>(cfg.max_seq_len),
          "ShardedTransformer: context exceeds max_seq_len");
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto shards = static_cast<std::size_t>(tp_ * ep_);
  const std::size_t q_dim_total = attn_gather_.size();
  const auto inter = static_cast<std::size_t>(cfg.ffn_intermediate);

  const std::size_t row_base = hidden / shards;
  const std::size_t row_rem = hidden % shards;
  auto row_range = [&](std::size_t s) {
    const std::size_t begin = s * row_base + std::min(s, row_rem);
    return std::pair<std::size_t, std::size_t>(
        begin, begin + row_base + (s < row_rem ? 1 : 0));
  };

  std::vector<float> x(T * hidden);
  for (std::size_t t = 0; t < T; ++t) {
    require(tokens[t] >= 0 && tokens[t] < cfg.vocab_size,
            "ShardedTransformer: token out of range");
    std::copy_n(
        weights_.embedding.begin() +
            static_cast<std::ptrdiff_t>(static_cast<std::size_t>(tokens[t]) * hidden),
        hidden, x.begin() + static_cast<std::ptrdiff_t>(t * hidden));
  }

  std::vector<float> normed(T * hidden), proj(T * hidden);
  std::vector<float> attn_g(T * q_dim_total), inter_g(T * inter);
  // Chunk-local K/V per (shard, layer), appended token-major at the end.
  std::vector<std::vector<std::vector<float>>> chunk_k(shards), chunk_v(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    chunk_k[s].resize(static_cast<std::size_t>(cfg.n_layers));
    chunk_v[s].resize(static_cast<std::size_t>(cfg.n_layers));
  }

  // Row-parallel projection over the whole chunk: shard s computes its
  // output-row slice for every token (batched), then scatters into the
  // [T x hidden] destination. Per-element accumulation matches the serial
  // engine's batched_matmul exactly, so both gather schedules below are
  // bitwise-identical to serial — they only change when slices land.
  std::vector<float> chunk_scratch(T * hidden);
  auto project_chunk = [&](std::span<const float> w, std::span<const float> in,
                           std::span<float> out, std::size_t cols) {
    auto compute = [&](std::size_t s, std::span<float> dest) {
      const auto [r0, r1] = row_range(s);
      const std::size_t rows = r1 - r0;
      if (rows == 0) return;
      std::vector<float> slice(T * rows);
      batched_matmul(w.subspan(r0 * cols, rows * cols), in, slice, rows, cols, T);
      for (std::size_t t = 0; t < T; ++t)
        std::copy_n(slice.begin() + static_cast<std::ptrdiff_t>(t * rows), rows,
                    dest.begin() + static_cast<std::ptrdiff_t>(t * hidden + r0));
    };
    if (shards > 1 &&
        gather_mode_for(in.size() * sizeof(float)) == GatherMode::kChunked) {
      // Reduce-scatter stage into private scratch, then an allgather stage
      // publishes each shard's slice (the structure a ring collective runs).
      {
        obs::Span rs("engine.gather.reduce_scatter", obs::Cat::kEngine,
                     static_cast<std::int64_t>(shards));
        dispatch([&](std::size_t s) { compute(s, chunk_scratch); });
      }
      obs::Span ag("engine.gather.allgather", obs::Cat::kEngine,
                   static_cast<std::int64_t>(shards));
      dispatch([&](std::size_t s) {
        const auto [r0, r1] = row_range(s);
        if (r1 == r0) return;
        for (std::size_t t = 0; t < T; ++t)
          std::copy_n(
              chunk_scratch.begin() + static_cast<std::ptrdiff_t>(t * hidden + r0),
              r1 - r0, out.begin() + static_cast<std::ptrdiff_t>(t * hidden + r0));
      });
    } else {
      dispatch([&](std::size_t s) { compute(s, out); });
    }
  };

  for (int l = 0; l < cfg.n_layers; ++l) {
    const auto& lw = weights_.layers[static_cast<std::size_t>(l)];

    for (std::size_t t = 0; t < T; ++t)
      rmsnorm(std::span<const float>(x).subspan(t * hidden, hidden), lw.attn_norm,
              std::span<float>(normed).subspan(t * hidden, hidden));
    dispatch([&](std::size_t s) {
      attention_slice_prefill(l, s, T, normed, attn_g,
                              chunk_k[s][static_cast<std::size_t>(l)],
                              chunk_v[s][static_cast<std::size_t>(l)]);
    });
    project_chunk(lw.wo, attn_g, proj, q_dim_total);
    for (std::size_t i = 0; i < T * hidden; ++i) x[i] += proj[i];

    for (std::size_t t = 0; t < T; ++t)
      rmsnorm(std::span<const float>(x).subspan(t * hidden, hidden), lw.ffn_norm,
              std::span<float>(normed).subspan(t * hidden, hidden));
    // Dense TP FFN: intermediate rows sharded, token-parallel per shard.
    dispatch([&](std::size_t s) {
      const std::size_t inter_rows = inter / shards;
      const std::size_t row_off = s * inter_rows;
      std::vector<float> gate(T * inter_rows), up(T * inter_rows);
      batched_matmul(std::span<const float>(lw.w_gate[0])
                         .subspan(row_off * hidden, inter_rows * hidden),
                     normed, gate, inter_rows, hidden, T);
      batched_matmul(std::span<const float>(lw.w_up[0])
                         .subspan(row_off * hidden, inter_rows * hidden),
                     normed, up, inter_rows, hidden, T);
      silu(gate);
      for (std::size_t i = 0; i < T * inter_rows; ++i) gate[i] *= up[i];
      for (std::size_t t = 0; t < T; ++t)
        std::copy_n(gate.begin() + static_cast<std::ptrdiff_t>(t * inter_rows),
                    inter_rows,
                    inter_g.begin() + static_cast<std::ptrdiff_t>(t * inter + row_off));
    });
    project_chunk(lw.w_down[0], inter_g, proj, inter);
    for (std::size_t i = 0; i < T * hidden; ++i) x[i] += proj[i];
  }

  // Append the chunk's K/V in each shard's required token-major order;
  // shard stores are disjoint, so the appends fan out across the pool.
  dispatch([&](std::size_t s) {
    if (ep_ > 1 && s != 0) return;
    for (std::size_t t = 0; t < T; ++t)
      for (int l = 0; l < cfg.n_layers; ++l) {
        const auto& ck = chunk_k[s][static_cast<std::size_t>(l)];
        const auto& cv = chunk_v[s][static_cast<std::size_t>(l)];
        const std::size_t kv_rows = ck.size() / T;
        require(shard_kv_[s]->append(
                    l, std::span<const float>(ck).subspan(t * kv_rows, kv_rows),
                    std::span<const float>(cv).subspan(t * kv_rows, kv_rows)),
                "ShardedTransformer: KV append failed");
      }
  });
  tokens_ += T;

  auto last = std::span<const float>(x).subspan((T - 1) * hidden, hidden);
  std::vector<float> head_in(hidden);
  rmsnorm(last, weights_.final_norm, head_in);
  std::vector<float> logits(static_cast<std::size_t>(cfg.vocab_size));
  matvec(weights_.lm_head, head_in, logits, static_cast<std::size_t>(cfg.vocab_size),
         hidden);
  return logits;
}

}  // namespace llmib::engine
