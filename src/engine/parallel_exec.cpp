#include "engine/parallel_exec.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "engine/tensor_ops.h"
#include "util/check.h"

namespace llmib::engine {

using util::require;

ShardedTransformer::ShardedTransformer(const TransformerWeights& weights, int tp,
                                       int ep)
    : weights_(weights), tp_(tp), ep_(ep) {
  const auto& cfg = weights.config;
  require(tp >= 1 && ep >= 1, "ShardedTransformer: degrees must be >= 1");
  require(tp == 1 || ep == 1, "ShardedTransformer: combine tp or ep, not both");
  if (tp > 1) {
    require(cfg.ffn == models::FfnKind::kDense,
            "ShardedTransformer: tp > 1 supports dense models (use ep for MoE)");
    require(cfg.n_heads % tp == 0, "ShardedTransformer: tp must divide heads");
    require(cfg.n_kv_heads % tp == 0, "ShardedTransformer: tp must divide KV heads");
    require(cfg.ffn_intermediate % tp == 0,
            "ShardedTransformer: tp must divide ffn_intermediate");
    require(cfg.kv_heads_per_layer.empty(),
            "ShardedTransformer: variable-GQA models unsupported with tp");
  }
  if (ep > 1) {
    require(cfg.ffn == models::FfnKind::kMoE, "ShardedTransformer: ep requires MoE");
    require(cfg.n_experts % ep == 0, "ShardedTransformer: ep must divide experts");
  }

  const int shards = tp_ * ep_;
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  for (int s = 0; s < shards; ++s) {
    std::vector<std::size_t> dims;
    for (const auto& l : weights.layers) {
      const std::size_t full = l.wk.size() / hidden;
      // TP shards KV heads; EP replicates attention (and therefore KV) but
      // only shard 0 materializes it to avoid redundant storage here.
      if (tp_ > 1) {
        dims.push_back(full / static_cast<std::size_t>(tp_));
      } else {
        dims.push_back(s == 0 ? full : 1);  // dummy dims for non-owners
      }
    }
    shard_kv_.push_back(std::make_unique<ContiguousKvStore>(dims));
  }
}

void ShardedTransformer::reset() {
  const auto& cfg = weights_.config;
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  for (std::size_t s = 0; s < shard_kv_.size(); ++s) {
    std::vector<std::size_t> dims;
    for (const auto& l : weights_.layers) {
      const std::size_t full = l.wk.size() / hidden;
      if (tp_ > 1) {
        dims.push_back(full / static_cast<std::size_t>(tp_));
      } else {
        dims.push_back(s == 0 ? full : 1);
      }
    }
    shard_kv_[s] = std::make_unique<ContiguousKvStore>(dims);
  }
  tokens_ = 0;
}

std::size_t ShardedTransformer::context_size() const { return tokens_; }

std::vector<std::size_t> ShardedTransformer::kv_floats_per_shard() const {
  std::vector<std::size_t> out;
  const auto hidden = static_cast<std::size_t>(weights_.config.hidden_size);
  for (std::size_t s = 0; s < shard_kv_.size(); ++s) {
    std::size_t floats = 0;
    for (std::size_t l = 0; l < weights_.layers.size(); ++l) {
      const std::size_t full = weights_.layers[l].wk.size() / hidden;
      const std::size_t dim =
          tp_ > 1 ? full / static_cast<std::size_t>(tp_) : (s == 0 ? full : 0);
      floats += 2 * dim * tokens_;
    }
    out.push_back(floats);
  }
  return out;
}

void ShardedTransformer::attention_shard(int layer, std::size_t s,
                                         std::span<const float> normed,
                                         std::span<float> partial) {
  const auto& cfg = weights_.config;
  const auto& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto head_dim = static_cast<std::size_t>(cfg.head_dim());
  const auto n_heads_total = static_cast<std::size_t>(cfg.n_heads);
  const std::size_t q_dim_total = n_heads_total * head_dim;

  // EP replicates attention: only shard 0 computes it (the others
  // contribute zeros to the all-reduce).
  if (ep_ > 1 && s != 0) {
    std::fill(partial.begin(), partial.end(), 0.0f);
    return;
  }
  const std::size_t shards = tp_ > 1 ? static_cast<std::size_t>(tp_) : 1;
  const std::size_t heads = n_heads_total / shards;
  const std::size_t kv_dim_total = lw.wk.size() / hidden;
  const std::size_t kv_heads = kv_dim_total / head_dim / shards;
  const std::size_t group = heads / kv_heads;

  const std::size_t q_rows = heads * head_dim;
  const std::size_t kv_rows = kv_heads * head_dim;
  const std::size_t q_off = s * q_rows;
  const std::size_t kv_off = s * kv_rows;

  std::vector<float> q(q_rows), k(kv_rows), v(kv_rows);
  matvec(std::span<const float>(lw.wq).subspan(q_off * hidden, q_rows * hidden),
         normed, q, q_rows, hidden);
  matvec(std::span<const float>(lw.wk).subspan(kv_off * hidden, kv_rows * hidden),
         normed, k, kv_rows, hidden);
  matvec(std::span<const float>(lw.wv).subspan(kv_off * hidden, kv_rows * hidden),
         normed, v, kv_rows, hidden);

  const std::size_t pos = tokens_;
  for (std::size_t h = 0; h < heads; ++h)
    rope(std::span<float>(q).subspan(h * head_dim, head_dim), pos);
  for (std::size_t h = 0; h < kv_heads; ++h)
    rope(std::span<float>(k).subspan(h * head_dim, head_dim), pos);

  KvStore& kv = *shard_kv_[s];
  require(kv.append(layer, k, v), "ShardedTransformer: KV append failed");
  const std::size_t len = pos + 1;
  // Same sliding-window rule as the serial engine (equivalence invariant).
  const std::size_t first =
      cfg.sliding_window > 0 && len > static_cast<std::size_t>(cfg.sliding_window)
          ? len - static_cast<std::size_t>(cfg.sliding_window)
          : 0;
  const std::size_t span_len = len - first;

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::vector<float> attn(q_rows, 0.0f);
  std::vector<float> scores(span_len);
  for (std::size_t h = 0; h < heads; ++h) {
    const std::size_t kv_h = h / group;
    const auto q_head = std::span<const float>(q).subspan(h * head_dim, head_dim);
    for (std::size_t t = 0; t < span_len; ++t)
      scores[t] =
          dot(q_head, kv.key(layer, first + t).subspan(kv_h * head_dim, head_dim)) *
          scale;
    softmax(scores);
    auto o_head = std::span<float>(attn).subspan(h * head_dim, head_dim);
    for (std::size_t t = 0; t < span_len; ++t) {
      const auto v_t = kv.value(layer, first + t).subspan(kv_h * head_dim, head_dim);
      for (std::size_t d = 0; d < head_dim; ++d) o_head[d] += scores[t] * v_t[d];
    }
  }

  // Output projection: this shard's columns of Wo.
  std::fill(partial.begin(), partial.end(), 0.0f);
  for (std::size_t r = 0; r < hidden; ++r) {
    const float* row = lw.wo.data() + r * q_dim_total + q_off;
    float acc = 0.0f;
    for (std::size_t c = 0; c < q_rows; ++c) acc += row[c] * attn[c];
    partial[r] = acc;
  }
}

void ShardedTransformer::ffn_shard(int layer, std::size_t s,
                                   std::span<const float> normed,
                                   std::span<float> partial) {
  const auto& cfg = weights_.config;
  const auto& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto inter_total = static_cast<std::size_t>(cfg.ffn_intermediate);
  std::fill(partial.begin(), partial.end(), 0.0f);

  auto expert_rows = [&](std::size_t e, std::size_t row_off, std::size_t rows,
                         float weight) {
    std::vector<float> gate(rows), up(rows);
    matvec(std::span<const float>(lw.w_gate[e]).subspan(row_off * hidden, rows * hidden),
           normed, gate, rows, hidden);
    matvec(std::span<const float>(lw.w_up[e]).subspan(row_off * hidden, rows * hidden),
           normed, up, rows, hidden);
    silu(gate);
    for (std::size_t i = 0; i < rows; ++i) gate[i] *= up[i];
    // Down projection: the matching columns of w_down.
    for (std::size_t r = 0; r < hidden; ++r) {
      const float* row = lw.w_down[e].data() + r * inter_total + row_off;
      float acc = 0.0f;
      for (std::size_t c = 0; c < rows; ++c) acc += row[c] * gate[c];
      partial[r] += weight * acc;
    }
  };

  if (cfg.ffn == models::FfnKind::kDense) {
    const auto shards = static_cast<std::size_t>(tp_);
    const std::size_t rows = inter_total / shards;
    expert_rows(0, s * rows, rows, 1.0f);
    return;
  }

  // MoE with EP: router everywhere (cheap), each shard computes only the
  // selected experts it owns.
  const auto n_experts = static_cast<std::size_t>(cfg.n_experts);
  std::vector<float> router_scores(n_experts);
  matvec(lw.router, normed, router_scores, n_experts, hidden);
  std::vector<std::size_t> order(n_experts);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return router_scores[a] > router_scores[b];
  });
  const auto k = static_cast<std::size_t>(cfg.experts_active);
  std::vector<float> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = router_scores[order[i]];
  softmax(top);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t owner = order[i] % static_cast<std::size_t>(ep_);
    if (owner != s) continue;
    expert_rows(order[i], 0, inter_total, top[i]);
  }
}

std::vector<float> ShardedTransformer::forward(TokenId token) {
  const auto& cfg = weights_.config;
  require(token >= 0 && token < cfg.vocab_size, "ShardedTransformer: token out of range");
  const auto hidden = static_cast<std::size_t>(cfg.hidden_size);
  const auto shards = static_cast<std::size_t>(tp_ * ep_);

  std::vector<float> x(
      weights_.embedding.begin() +
          static_cast<std::ptrdiff_t>(static_cast<std::size_t>(token) * hidden),
      weights_.embedding.begin() +
          static_cast<std::ptrdiff_t>((static_cast<std::size_t>(token) + 1) * hidden));
  std::vector<float> normed(hidden);
  std::vector<std::vector<float>> partials(shards, std::vector<float>(hidden));

  auto run_parallel = [&](auto&& fn) {
    // One thread per simulated device; the all-reduce is the join + sum.
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      workers.emplace_back([&, s] { fn(s, std::span<float>(partials[s])); });
    for (auto& w : workers) w.join();
    // Fixed-order reduction keeps results bitwise reproducible.
    for (std::size_t s = 0; s < shards; ++s)
      for (std::size_t i = 0; i < hidden; ++i) x[i] += partials[s][i];
  };

  for (int l = 0; l < cfg.n_layers; ++l) {
    const auto& lw = weights_.layers[static_cast<std::size_t>(l)];
    rmsnorm(x, lw.attn_norm, normed);
    run_parallel([&](std::size_t s, std::span<float> out) {
      attention_shard(l, s, normed, out);
    });
    rmsnorm(x, lw.ffn_norm, normed);
    run_parallel(
        [&](std::size_t s, std::span<float> out) { ffn_shard(l, s, normed, out); });
  }
  ++tokens_;

  rmsnorm(x, weights_.final_norm, normed);
  std::vector<float> logits(static_cast<std::size_t>(cfg.vocab_size));
  matvec(weights_.lm_head, normed, logits, static_cast<std::size_t>(cfg.vocab_size),
         hidden);
  return logits;
}

}  // namespace llmib::engine
