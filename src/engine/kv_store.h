#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kv/paged_allocator.h"

namespace llmib::engine {

/// One maximal contiguous slab of cached K/V rows: `len` consecutive token
/// positions whose K (resp. V) vectors sit back to back, kv_dim(layer)
/// floats apart. Produced by KvStore::runs().
struct KvRun {
  const float* k = nullptr;
  const float* v = nullptr;
  std::size_t len = 0;
};

/// Abstract per-sequence KV storage for the mini engine. One instance holds
/// the cache for ONE sequence across all layers. Both implementations must
/// produce byte-identical reads — the paged/contiguous equivalence test in
/// tests/engine is the paper's Fig. 2b correctness premise.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Append one token's K and V vectors for `layer`. K and V each have
  /// kv_dim(layer) floats. Returns false if the backing pool is exhausted.
  virtual bool append(int layer, std::span<const float> k,
                      std::span<const float> v) = 0;

  /// Cached K (resp. V) for `layer` at token position `pos`.
  virtual std::span<const float> key(int layer, std::size_t pos) const = 0;
  virtual std::span<const float> value(int layer, std::size_t pos) const = 0;

  /// Append maximal contiguous (K*, V*, count) slabs covering positions
  /// [first, first+len) of `layer` to `out`, in position order. `out` is NOT
  /// cleared — callers reuse a per-thread scratch vector. Concatenated run
  /// data is byte-identical to reading key()/value() per position; the row
  /// stride within a run is kv_dim(layer). Pointers stay valid only until
  /// the next append to this store (contiguous growth or copy-on-write
  /// relocation may move the rows). The base implementation degrades to one
  /// run per position; stores override with block- or whole-history slabs.
  virtual void runs(int layer, std::size_t first, std::size_t len,
                    std::vector<KvRun>& out) const;

  /// Tokens cached so far (same for every layer by construction).
  virtual std::size_t size() const = 0;
};

/// Contiguous growable storage (the "traditional monolithic" KV cache).
class ContiguousKvStore final : public KvStore {
 public:
  /// `kv_dims[l]` = kv_heads(l) * head_dim for each layer.
  explicit ContiguousKvStore(std::vector<std::size_t> kv_dims);

  bool append(int layer, std::span<const float> k, std::span<const float> v) override;
  std::span<const float> key(int layer, std::size_t pos) const override;
  std::span<const float> value(int layer, std::size_t pos) const override;
  /// The whole requested range is one run: a single (K*, V*, len) slab.
  void runs(int layer, std::size_t first, std::size_t len,
            std::vector<KvRun>& out) const override;
  std::size_t size() const override { return tokens_; }

  /// Floats actually held (K + V planes, all layers) — the ground truth
  /// capacity accounting reports must agree with.
  std::size_t stored_floats() const;

 private:
  std::vector<std::size_t> kv_dims_;
  std::vector<std::vector<float>> keys_, values_;  // per layer, flat
  std::size_t tokens_ = 0;
  int appended_layers_ = 0;  // tracks within-token append progress
};

/// Shared block pool behind paged stores (vLLM-style). Owns the float
/// storage; PagedKvAllocator owns the block bookkeeping.
class PagedKvPool {
 public:
  PagedKvPool(std::uint32_t total_blocks, std::uint32_t block_size,
              std::vector<std::size_t> kv_dims);

  kv::PagedKvAllocator& allocator() { return alloc_; }
  const kv::PagedKvAllocator& allocator() const { return alloc_; }
  std::uint32_t block_size() const { return block_size_; }
  const std::vector<std::size_t>& kv_dims() const { return kv_dims_; }

  /// Copy one block's payload (all layers, K and V planes) from src to dst
  /// — the data half of a copy-on-write relocation.
  void copy_block(kv::BlockId src, kv::BlockId dst);

  /// Raw slot for (layer, block, offset-in-block); K and V planes.
  std::span<float> key_slot(int layer, kv::BlockId block, std::uint32_t offset);
  std::span<float> value_slot(int layer, kv::BlockId block, std::uint32_t offset);
  std::span<const float> key_slot(int layer, kv::BlockId block,
                                  std::uint32_t offset) const;
  std::span<const float> value_slot(int layer, kv::BlockId block,
                                    std::uint32_t offset) const;

 private:
  kv::PagedKvAllocator alloc_;
  std::uint32_t block_size_;
  std::vector<std::size_t> kv_dims_;
  // Per layer: [total_blocks * block_size * kv_dim] floats.
  std::vector<std::vector<float>> keys_, values_;
};

/// Paged view of one sequence: block-table indirection on every access.
class PagedKvStore final : public KvStore {
 public:
  /// Registers a new sequence in the pool. The pool must outlive the store.
  PagedKvStore(PagedKvPool& pool, kv::SeqId id);
  /// Fork constructor: the new sequence shares `parent`'s cached prefix
  /// copy-on-write (vLLM prefix sharing). Both stores may keep appending;
  /// shared tail blocks are relocated transparently.
  PagedKvStore(PagedKvPool& pool, kv::SeqId id, const PagedKvStore& parent);
  /// Prefix-fork constructor: shares only the blocks covering `parent`'s
  /// first `prefix_tokens` tokens and starts at that length (the prefix-cache
  /// hit path). With `prefix_tokens` block-aligned — the cache guarantees
  /// this — subsequent appends open fresh blocks and never copy-on-write the
  /// shared prefix.
  PagedKvStore(PagedKvPool& pool, kv::SeqId id, const PagedKvStore& parent,
               std::size_t prefix_tokens);
  ~PagedKvStore() override;

  PagedKvStore(const PagedKvStore&) = delete;
  PagedKvStore& operator=(const PagedKvStore&) = delete;

  bool append(int layer, std::span<const float> k, std::span<const float> v) override;
  std::span<const float> key(int layer, std::size_t pos) const override;
  std::span<const float> value(int layer, std::size_t pos) const override;
  /// Block-granular slabs: one run per stretch of physically adjacent
  /// blocks (the allocator hands out ascending ids, so a freshly grown
  /// sequence coalesces; copy-on-write relocation breaks adjacency, so a
  /// forked sequence splits exactly at relocated blocks).
  void runs(int layer, std::size_t first, std::size_t len,
            std::vector<KvRun>& out) const override;
  std::size_t size() const override { return tokens_; }
  kv::SeqId seq_id() const { return id_; }

 private:
  std::size_t tokens_visible(int layer) const;

  PagedKvPool& pool_;
  kv::SeqId id_;
  std::size_t tokens_ = 0;
  int appended_layers_ = 0;
};

}  // namespace llmib::engine
