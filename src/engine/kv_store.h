#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kv/paged_allocator.h"

namespace llmib::engine {

/// Storage format of cached K/V rows. Quantized formats hold ONE byte per
/// element (plus, for int8, one fp32 scale per row) — the capacity and
/// bandwidth lever behind the paper's FP8-KV results (§IV-B.3, Fig. 10).
enum class KvQuant : std::uint8_t {
  kFp32,  ///< plain float rows (the default)
  kInt8,  ///< symmetric per-row int8: q = clamp(nearbyint(x/s), -127, 127)
  kFp8,   ///< FP8 E4M3 bytes (bias 7, saturating at +/-448)
};

/// One maximal contiguous slab of cached K/V rows: `len` consecutive token
/// positions whose K (resp. V) vectors sit back to back, kv_dim(layer)
/// elements apart. Produced by KvStore::runs().
///
/// `fmt` tags the storage of THIS run (a store may report mixed-format runs,
/// e.g. an fp32 prefix frozen before a mid-generation FP8 switch). For
/// kFp32 only k/v are set. For kInt8/kFp8 the rows live in kq/vq (same
/// kv_dim row pitch, one byte per element) and k/v are null; kInt8 runs
/// additionally carry one fp32 scale per row in k_scale/v_scale (stride 1
/// along positions).
struct KvRun {
  const float* k = nullptr;
  const float* v = nullptr;
  std::size_t len = 0;
  KvQuant fmt = KvQuant::kFp32;
  const std::uint8_t* kq = nullptr;
  const std::uint8_t* vq = nullptr;
  const float* k_scale = nullptr;
  const float* v_scale = nullptr;

  /// Sub-run covering positions [off, off+n) of this run; `dim` is the
  /// kv_dim row pitch.
  KvRun slice(std::size_t off, std::size_t n, std::size_t dim) const;
};

/// Quantize one K or V row into `out` (row.size() bytes). kInt8 returns the
/// per-row scale amax/127 (1.0 for an all-zero row); kFp8 encodes E4M3 and
/// returns 1.0 (unused). kFp32 is invalid here.
float quantize_kv_row(KvQuant fmt, std::span<const float> row, std::uint8_t* out);

/// Dequantize one quantized row. Produces EXACTLY the per-element values the
/// fused kernels compute in register — fl(float(int8) * scale) for kInt8,
/// the shared E4M3 table entry for kFp8 — so a per-position read through
/// this helper is the bitwise reference for the fused run kernels.
void dequantize_kv_row(KvQuant fmt, const std::uint8_t* bytes, float scale,
                       std::span<float> out);

/// Dequantize row `idx` of a quantized run (K when value==false, V when
/// true) into `out` (dim floats).
void dequantize_run_row(const KvRun& r, std::size_t idx, bool value,
                        std::size_t dim, std::span<float> out);

/// Bytes one cached token actually occupies across all layers in format
/// `fmt` (K + V planes; kInt8 includes the two per-row fp32 scales per
/// layer). The ground truth byte-denominated admission must agree with.
std::size_t kv_quant_bytes_per_token(const std::vector<std::size_t>& kv_dims,
                                     KvQuant fmt);

/// Abstract per-sequence KV storage for the mini engine. One instance holds
/// the cache for ONE sequence across all layers. Both implementations must
/// produce byte-identical reads — the paged/contiguous equivalence test in
/// tests/engine is the paper's Fig. 2b correctness premise.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Append one token's K and V vectors for `layer`. K and V each have
  /// kv_dim(layer) floats. Returns false if the backing pool is exhausted.
  /// Quantized stores quantize in place (per-row int8 or E4M3 bytes).
  virtual bool append(int layer, std::span<const float> k,
                      std::span<const float> v) = 0;

  /// Append one token's ALREADY-quantized K/V rows for `layer` (the chunked
  /// prefill path: the caller quantized each row once and the exact same
  /// bytes must land in storage, because int8 row quantization is not
  /// idempotent — re-quantizing dequantized values could change bytes and
  /// break the chunked==serial bit-identity). `k_scale`/`v_scale` are the
  /// per-row scales (ignored for kFp8). Only valid when quant() matches
  /// `fmt`; the base implementation rejects.
  virtual bool append_quantized(int layer, KvQuant fmt,
                                std::span<const std::uint8_t> k,
                                std::span<const std::uint8_t> v, float k_scale,
                                float v_scale);

  /// Cached K (resp. V) for `layer` at token position `pos`. Quantized
  /// stores return the dequantized row from a per-store scratch buffer —
  /// the span is only valid until the next key()/value() call on this
  /// store, and holds exactly the values the fused kernels see.
  virtual std::span<const float> key(int layer, std::size_t pos) const = 0;
  virtual std::span<const float> value(int layer, std::size_t pos) const = 0;

  /// Append maximal contiguous (K*, V*, count) slabs covering positions
  /// [first, first+len) of `layer` to `out`, in position order. `out` is NOT
  /// cleared — callers reuse a per-thread scratch vector. Concatenated run
  /// data is byte-identical to reading key()/value() per position (for
  /// quantized runs: dequantize_run_row matches key()/value()); the row
  /// stride within a run is kv_dim(layer). Pointers stay valid only until
  /// the next append to this store (contiguous growth or copy-on-write
  /// relocation may move the rows). The base implementation degrades to one
  /// run per position; stores override with block- or whole-history slabs.
  virtual void runs(int layer, std::size_t first, std::size_t len,
                    std::vector<KvRun>& out) const;

  /// Format NEW appends are stored in. Reads may still cover an fp32 prefix
  /// frozen before a mid-generation switch — runs() tags each run.
  virtual KvQuant quant() const { return KvQuant::kFp32; }

  /// Tokens cached so far (same for every layer by construction).
  virtual std::size_t size() const = 0;
};

/// Contiguous growable storage (the "traditional monolithic" KV cache).
class ContiguousKvStore final : public KvStore {
 public:
  /// `kv_dims[l]` = kv_heads(l) * head_dim for each layer.
  explicit ContiguousKvStore(std::vector<std::size_t> kv_dims);

  bool append(int layer, std::span<const float> k, std::span<const float> v) override;
  std::span<const float> key(int layer, std::size_t pos) const override;
  std::span<const float> value(int layer, std::size_t pos) const override;
  /// The whole requested range is one run: a single (K*, V*, len) slab.
  void runs(int layer, std::size_t first, std::size_t len,
            std::vector<KvRun>& out) const override;
  std::size_t size() const override { return tokens_; }

  /// Floats actually held (K + V planes, all layers) — the ground truth
  /// capacity accounting reports must agree with.
  std::size_t stored_floats() const;

 private:
  std::vector<std::size_t> kv_dims_;
  std::vector<std::vector<float>> keys_, values_;  // per layer, flat
  std::size_t tokens_ = 0;
  int appended_layers_ = 0;  // tracks within-token append progress
};

/// Shared block pool behind paged stores (vLLM-style). Owns the payload
/// storage — fp32 float planes, or byte planes (+ per-slot scale planes for
/// int8) when constructed with a quantized format; PagedKvAllocator owns
/// the block bookkeeping either way, so COW forks, prefix forks and the
/// radix prefix cache work on quantized pools unchanged (blocks are copied
/// byte-wise).
class PagedKvPool {
 public:
  PagedKvPool(std::uint32_t total_blocks, std::uint32_t block_size,
              std::vector<std::size_t> kv_dims, KvQuant fmt = KvQuant::kFp32);

  kv::PagedKvAllocator& allocator() { return alloc_; }
  const kv::PagedKvAllocator& allocator() const { return alloc_; }
  std::uint32_t block_size() const { return block_size_; }
  const std::vector<std::size_t>& kv_dims() const { return kv_dims_; }
  KvQuant quant() const { return fmt_; }

  /// Actual bytes one token slot occupies across all layers (K + V planes
  /// plus int8 scale entries) — kv_quant_bytes_per_token(kv_dims(), quant()).
  std::size_t bytes_per_token() const;

  /// Copy one block's payload (all layers, K and V planes, scales when
  /// quantized) from src to dst — the data half of a copy-on-write
  /// relocation. Byte-wise: never requantizes.
  void copy_block(kv::BlockId src, kv::BlockId dst);

  /// Raw fp32 slot for (layer, block, offset-in-block); K and V planes.
  /// Only valid on fp32 pools.
  std::span<float> key_slot(int layer, kv::BlockId block, std::uint32_t offset);
  std::span<float> value_slot(int layer, kv::BlockId block, std::uint32_t offset);
  std::span<const float> key_slot(int layer, kv::BlockId block,
                                  std::uint32_t offset) const;
  std::span<const float> value_slot(int layer, kv::BlockId block,
                                    std::uint32_t offset) const;

  /// Raw quantized slot (one byte per element); only valid on quantized
  /// pools. The scale pointers address per-slot fp32 scale planes laid out
  /// [block * block_size + offset], so physically adjacent blocks expose a
  /// contiguous scale stream — the per-run scale stream runs() reports.
  std::span<std::uint8_t> key_bytes(int layer, kv::BlockId block, std::uint32_t offset);
  std::span<std::uint8_t> value_bytes(int layer, kv::BlockId block, std::uint32_t offset);
  std::span<const std::uint8_t> key_bytes(int layer, kv::BlockId block,
                                          std::uint32_t offset) const;
  std::span<const std::uint8_t> value_bytes(int layer, kv::BlockId block,
                                            std::uint32_t offset) const;
  float* key_scale(int layer, kv::BlockId block, std::uint32_t offset);
  float* value_scale(int layer, kv::BlockId block, std::uint32_t offset);
  const float* key_scale(int layer, kv::BlockId block, std::uint32_t offset) const;
  const float* value_scale(int layer, kv::BlockId block, std::uint32_t offset) const;

 private:
  kv::PagedKvAllocator alloc_;
  std::uint32_t block_size_;
  std::vector<std::size_t> kv_dims_;
  KvQuant fmt_;
  // fp32 pools — per layer: [total_blocks * block_size * kv_dim] floats.
  std::vector<std::vector<float>> keys_, values_;
  // Quantized pools — per layer: the same geometry in bytes, plus (int8)
  // one fp32 scale per slot: [total_blocks * block_size].
  std::vector<std::vector<std::uint8_t>> key_bytes_, value_bytes_;
  std::vector<std::vector<float>> key_scales_, value_scales_;
};

/// Paged view of one sequence: block-table indirection on every access.
class PagedKvStore final : public KvStore {
 public:
  /// Registers a new sequence in the pool. The pool must outlive the store.
  PagedKvStore(PagedKvPool& pool, kv::SeqId id);
  /// Fork constructor: the new sequence shares `parent`'s cached prefix
  /// copy-on-write (vLLM prefix sharing). Both stores may keep appending;
  /// shared tail blocks are relocated transparently.
  PagedKvStore(PagedKvPool& pool, kv::SeqId id, const PagedKvStore& parent);
  /// Prefix-fork constructor: shares only the blocks covering `parent`'s
  /// first `prefix_tokens` tokens and starts at that length (the prefix-cache
  /// hit path). With `prefix_tokens` block-aligned — the cache guarantees
  /// this — subsequent appends open fresh blocks and never copy-on-write the
  /// shared prefix.
  PagedKvStore(PagedKvPool& pool, kv::SeqId id, const PagedKvStore& parent,
               std::size_t prefix_tokens);
  ~PagedKvStore() override;

  PagedKvStore(const PagedKvStore&) = delete;
  PagedKvStore& operator=(const PagedKvStore&) = delete;

  bool append(int layer, std::span<const float> k, std::span<const float> v) override;
  bool append_quantized(int layer, KvQuant fmt, std::span<const std::uint8_t> k,
                        std::span<const std::uint8_t> v, float k_scale,
                        float v_scale) override;
  std::span<const float> key(int layer, std::size_t pos) const override;
  std::span<const float> value(int layer, std::size_t pos) const override;
  /// Block-granular slabs: one run per stretch of physically adjacent
  /// blocks (the allocator hands out ascending ids, so a freshly grown
  /// sequence coalesces; copy-on-write relocation breaks adjacency, so a
  /// forked sequence splits exactly at relocated blocks). On quantized
  /// pools the runs carry byte slabs + scale streams instead of float rows.
  void runs(int layer, std::size_t first, std::size_t len,
            std::vector<KvRun>& out) const override;
  KvQuant quant() const override { return pool_.quant(); }
  std::size_t size() const override { return tokens_; }
  kv::SeqId seq_id() const { return id_; }

 private:
  std::size_t tokens_visible(int layer) const;
  /// Claim the block slot for the next append (COW at layer 0) and locate
  /// it. Returns false on pool exhaustion.
  bool claim_slot(int layer, std::size_t dim, kv::BlockId& block,
                  std::uint32_t& offset);
  void advance_layer();

  PagedKvPool& pool_;
  kv::SeqId id_;
  std::size_t tokens_ = 0;
  int appended_layers_ = 0;
  // Dequantized-row scratch for key()/value() on quantized pools (grow-only;
  // spans returned from those calls alias these buffers).
  mutable std::vector<float> dq_key_, dq_value_;
};

}  // namespace llmib::engine
