#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace llmib::engine {

/// Dense fp32 kernels for the mini engine. Everything is row-major and
/// operates on caller-provided spans; no hidden allocation in the hot path.
///
/// The GEMV/dot entry points are thin shape-checked wrappers over the
/// runtime-dispatched SIMD kernel layer (engine/kernels/kernels.h,
/// docs/KERNELS.md): the active backend (AVX2+FMA where the CPU supports
/// it, an unrolled portable fallback otherwise) serves every engine path,
/// so serial, batched and sharded execution share one accumulation order
/// per element and stay bit-identical to each other.

/// y = W x, W is rows x cols row-major, x has cols elements, y rows.
void matvec(std::span<const float> w, std::span<const float> x, std::span<float> y,
            std::size_t rows, std::size_t cols);

/// y += W x.
void matvec_add(std::span<const float> w, std::span<const float> x,
                std::span<float> y, std::size_t rows, std::size_t cols);

/// Fused QKV projection: q = Wq x, k = Wk x, v = Wv x in one kernel call —
/// the input activation is read once for all three projections.
/// Per-element results are identical to three matvec() calls.
void fused_qkv(std::span<const float> wq, std::span<const float> wk,
               std::span<const float> wv, std::span<const float> x,
               std::span<float> q, std::span<float> k, std::span<float> v);

/// y[b][r] = sum_c w[r*cols+c] * x[b][c]: weight-stationary batched matmul
/// (each weight row is streamed once for the whole batch — the traffic
/// amortization decode batching and prefill are about). x is contiguous
/// row-major [batch x cols]; y is [batch x rows]. The per-(r, b)
/// accumulation order matches matvec() exactly, so batched outputs are
/// bit-identical to per-row matvec calls.
void batched_matmul(std::span<const float> w, std::span<const float> x,
                    std::span<float> y, std::size_t rows, std::size_t cols,
                    std::size_t batch);

/// RMSNorm: out[i] = x[i] / rms(x) * gain[i].
void rmsnorm(std::span<const float> x, std::span<const float> gain,
             std::span<float> out, float eps = 1e-5f);

/// In-place numerically-stable softmax.
void softmax(std::span<float> x);

/// SiLU (swish) activation, in place.
void silu(std::span<float> x);

/// Rotary position embedding applied in-place to one head's q or k vector
/// (dim must be even); `pos` is the absolute token position.
void rope(std::span<float> v, std::size_t pos, double theta_base = 10000.0);

/// Precomputed RoPE cos/sin tables for head dimension `head_dim` and
/// positions [0, max_pos): removes std::pow/std::cos/std::sin from the
/// per-token hot loop. Entries are computed with exactly the closed-form
/// rope() arithmetic, so the cached path is bit-identical to it
/// (tests/kernels_test.cpp pins the equivalence).
class RopeTable {
 public:
  RopeTable(std::size_t head_dim, std::size_t max_pos, double theta_base);

  std::size_t head_dim() const { return head_dim_; }
  std::size_t max_pos() const { return max_pos_; }
  double theta_base() const { return theta_; }

  const float* cos_row(std::size_t pos) const {
    return cos_.data() + pos * (head_dim_ / 2);
  }
  const float* sin_row(std::size_t pos) const {
    return sin_.data() + pos * (head_dim_ / 2);
  }

  /// Process-wide table cache keyed by (head_dim, max_pos, theta): one
  /// table per model shape, shared by every executor over those weights.
  static std::shared_ptr<const RopeTable> shared(std::size_t head_dim,
                                                 std::size_t max_pos,
                                                 double theta_base = 10000.0);

 private:
  std::size_t head_dim_;
  std::size_t max_pos_;
  double theta_;
  std::vector<float> cos_, sin_;  // [max_pos x head_dim/2]
};

/// Table-driven RoPE: identical rotation to rope(v, pos) but indexing the
/// precomputed tables. Requires v.size() == table.head_dim() and
/// pos < table.max_pos().
void rope(std::span<float> v, std::size_t pos, const RopeTable& table);

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b);

/// out = a + b (elementwise); sizes must match.
void add(std::span<const float> a, std::span<const float> b, std::span<float> out);

/// argmax index; ties resolved to the lowest index. Requires non-empty.
std::size_t argmax(std::span<const float> x);

}  // namespace llmib::engine
