#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace llmib::engine {

/// Dense fp32 kernels for the mini engine. Everything is row-major and
/// operates on caller-provided spans; no hidden allocation in the hot path.

/// y = W x, W is rows x cols row-major, x has cols elements, y rows.
void matvec(std::span<const float> w, std::span<const float> x, std::span<float> y,
            std::size_t rows, std::size_t cols);

/// y += W x.
void matvec_add(std::span<const float> w, std::span<const float> x,
                std::span<float> y, std::size_t rows, std::size_t cols);

/// RMSNorm: out[i] = x[i] / rms(x) * gain[i].
void rmsnorm(std::span<const float> x, std::span<const float> gain,
             std::span<float> out, float eps = 1e-5f);

/// In-place numerically-stable softmax.
void softmax(std::span<float> x);

/// SiLU (swish) activation, in place.
void silu(std::span<float> x);

/// Rotary position embedding applied in-place to one head's q or k vector
/// (dim must be even); `pos` is the absolute token position.
void rope(std::span<float> v, std::size_t pos, double theta_base = 10000.0);

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b);

/// out = a + b (elementwise); sizes must match.
void add(std::span<const float> a, std::span<const float> b, std::span<float> out);

/// argmax index; ties resolved to the lowest index. Requires non-empty.
std::size_t argmax(std::span<const float> x);

}  // namespace llmib::engine
