#include "engine/checkpoint.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace llmib::engine::checkpoint {

using util::require;

namespace {

void write_i64(std::ostream& out, std::int64_t v) {
  // Little-endian, byte by byte (portable regardless of host endianness).
  for (int i = 0; i < 8; ++i)
    out.put(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF));
}

std::int64_t read_i64(std::istream& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const int c = in.get();
    require(c != EOF, "checkpoint: truncated integer");
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return static_cast<std::int64_t>(v);
}

void write_floats(std::ostream& out, const std::vector<float>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  static_assert(sizeof(float) == 4);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * 4));
}

std::vector<float> read_floats(std::istream& in, std::size_t expected) {
  const auto n = static_cast<std::size_t>(read_i64(in));
  require(n == expected, "checkpoint: tensor size mismatch (expected " +
                             std::to_string(expected) + ", got " + std::to_string(n) +
                             ")");
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * 4));
  require(static_cast<std::size_t>(in.gcount()) == n * 4,
          "checkpoint: truncated tensor data");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_i64(out, static_cast<std::int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = static_cast<std::size_t>(read_i64(in));
  require(n < (1u << 20), "checkpoint: implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  require(static_cast<std::size_t>(in.gcount()) == n,
          "checkpoint: truncated string");
  return s;
}

}  // namespace

void save(const TransformerWeights& w, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const auto& c = w.config;
  write_string(out, c.name);
  for (std::int64_t v :
       {static_cast<std::int64_t>(c.n_layers), static_cast<std::int64_t>(c.hidden_size),
        static_cast<std::int64_t>(c.attention == models::AttentionKind::kGQA ? 1 : 0),
        static_cast<std::int64_t>(c.n_heads), static_cast<std::int64_t>(c.n_kv_heads),
        static_cast<std::int64_t>(c.ffn == models::FfnKind::kMoE ? 1 : 0),
        static_cast<std::int64_t>(c.n_experts),
        static_cast<std::int64_t>(c.experts_active), c.ffn_intermediate,
        static_cast<std::int64_t>(c.ffn_matrices), c.max_seq_len, c.vocab_size,
        c.sliding_window, static_cast<std::int64_t>(c.head_dim_override)}) {
    write_i64(out, v);
  }
  write_i64(out, static_cast<std::int64_t>(c.kv_heads_per_layer.size()));
  for (int h : c.kv_heads_per_layer) write_i64(out, h);

  write_floats(out, w.embedding);
  write_floats(out, w.final_norm);
  write_floats(out, w.lm_head);
  for (const auto& l : w.layers) {
    write_floats(out, l.attn_norm);
    write_floats(out, l.wq);
    write_floats(out, l.wk);
    write_floats(out, l.wv);
    write_floats(out, l.wo);
    write_floats(out, l.ffn_norm);
    for (const auto& m : l.w_gate) write_floats(out, m);
    for (const auto& m : l.w_up) write_floats(out, m);
    for (const auto& m : l.w_down) write_floats(out, m);
    write_floats(out, l.router);
  }
  require(out.good(), "checkpoint: write failure");
}

void save_file(const TransformerWeights& w, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  require(out.is_open(), "checkpoint: cannot open " + path + " for writing");
  save(w, out);
}

TransformerWeights load(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  require(in.gcount() == sizeof(magic) && std::memcmp(magic, kMagic, sizeof(magic)) == 0,
          "checkpoint: bad magic (not an llmib checkpoint?)");

  models::ModelConfig c;
  c.name = read_string(in);
  c.n_layers = static_cast<int>(read_i64(in));
  c.hidden_size = static_cast<int>(read_i64(in));
  c.attention = read_i64(in) ? models::AttentionKind::kGQA
                             : models::AttentionKind::kMHSA;
  c.n_heads = static_cast<int>(read_i64(in));
  c.n_kv_heads = static_cast<int>(read_i64(in));
  c.ffn = read_i64(in) ? models::FfnKind::kMoE : models::FfnKind::kDense;
  c.n_experts = static_cast<int>(read_i64(in));
  c.experts_active = static_cast<int>(read_i64(in));
  c.ffn_intermediate = read_i64(in);
  c.ffn_matrices = static_cast<int>(read_i64(in));
  c.max_seq_len = read_i64(in);
  c.vocab_size = read_i64(in);
  c.sliding_window = read_i64(in);
  c.head_dim_override = static_cast<int>(read_i64(in));
  const auto per_layer = static_cast<std::size_t>(read_i64(in));
  require(per_layer == 0 || per_layer == static_cast<std::size_t>(c.n_layers),
          "checkpoint: bad per-layer kv-head table");
  for (std::size_t i = 0; i < per_layer; ++i)
    c.kv_heads_per_layer.push_back(static_cast<int>(read_i64(in)));
  c.validate();

  // Rebuild the expected tensor shapes from the config, then fill them.
  TransformerWeights w = TransformerWeights::random(c, 0);
  w.embedding = read_floats(in, w.embedding.size());
  w.final_norm = read_floats(in, w.final_norm.size());
  w.lm_head = read_floats(in, w.lm_head.size());
  for (auto& l : w.layers) {
    l.attn_norm = read_floats(in, l.attn_norm.size());
    l.wq = read_floats(in, l.wq.size());
    l.wk = read_floats(in, l.wk.size());
    l.wv = read_floats(in, l.wv.size());
    l.wo = read_floats(in, l.wo.size());
    l.ffn_norm = read_floats(in, l.ffn_norm.size());
    for (auto& m : l.w_gate) m = read_floats(in, m.size());
    for (auto& m : l.w_up) m = read_floats(in, m.size());
    for (auto& m : l.w_down) m = read_floats(in, m.size());
    l.router = read_floats(in, l.router.size());
  }
  return w;
}

TransformerWeights load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.is_open(), "checkpoint: cannot open " + path);
  return load(in);
}

}  // namespace llmib::engine::checkpoint
