#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/kv_store.h"

namespace llmib::engine {

/// Which KV iteration strategy attend() uses. Both produce bitwise-identical
/// results within a kernel backend (pinned by tests/attention_runs_test.cpp);
/// kPerPosition exists as the measurable baseline and as the reference the
/// bit-identity is asserted against.
enum class AttnPath {
  kRuns,         ///< one KvStore::runs() call, kernels sweep whole slabs
  kPerPosition,  ///< one key()/value() virtual call per (head, position)
};

AttnPath attn_path();
/// Set the process-wide attention path (benchmarks/tests); returns the
/// previous one. Like kernels::set_backend, switch only between forwards.
AttnPath set_attn_path(AttnPath p);

/// RAII forced-path scope for tests/benchmarks.
class ScopedAttnPath {
 public:
  explicit ScopedAttnPath(AttnPath p) : previous_(set_attn_path(p)) {}
  ~ScopedAttnPath() { set_attn_path(previous_); }
  ScopedAttnPath(const ScopedAttnPath&) = delete;
  ScopedAttnPath& operator=(const ScopedAttnPath&) = delete;

 private:
  AttnPath previous_;
};

/// Reusable per-thread attention/FFN scratch. Decode used to allocate a
/// fresh scores vector per (token, layer, sequence) and fresh gate/up/down
/// buffers per expert call; every buffer here grows once to its high-water
/// mark and is then reused for the life of the thread.
///
/// Ownership rule: a scratch instance belongs to exactly ONE thread.
/// Call AttnScratch::local() at the point of use — worker-pool lambdas must
/// NOT capture the spawning thread's instance.
struct AttnScratch {
  std::vector<float> scores;   ///< n_heads rows x attention span
  std::vector<KvRun> runs;     ///< run list for the current attend() call
  std::vector<float> q, k, v;  ///< rotated QKV projections (decode)
  std::vector<float> attn_out; ///< pre-Wo attention output
  std::vector<float> gate, up, down, xin;  ///< FFN / expert buffers
  std::vector<float> dq_row;   ///< per-position dequant row (quantized chunk)

  /// This thread's scratch (thread_local; pool workers persist, so buffers
  /// are warm across steps).
  static AttnScratch& local();
};

/// Grow-only view helper: `buf` keeps its high-water capacity, the returned
/// span is exactly `n` floats.
inline std::span<float> scratch_span(std::vector<float>& buf, std::size_t n) {
  if (buf.size() < n) buf.resize(n);
  return {buf.data(), n};
}

/// One token's multi-head attention read against cached KV plus an optional
/// prefill chunk tail. Shared by all four forward paths (serial, batched,
/// chunked prefill, sharded) so they stay bitwise-identical by construction.
///
/// `q` holds n_heads = q.size()/head_dim rotated query heads; `out` (same
/// size) receives the concatenated head outputs (overwritten, not
/// accumulated). Positions [0, store_len) are read from `kv`; positions
/// [store_len, pos] from `chunk` — a run describing the FULL row-major
/// prefill chunk starting at position store_len (sliced per call; may be
/// null when pos < store_len, the pure decode case). The chunk run may be
/// fp32 or quantized; quantized stores and chunks dispatch to the fused
/// dequant-in-register kernels run by run, so mixed-format histories (fp32
/// prefix frozen before an FP8 switch) work transparently. GQA derives
/// from kv_dim: group = n_heads / (kv_dim / head_dim); each kv head's K/V
/// slabs are streamed once for its whole group of query heads.
/// `sliding_window` <= 0 means full attention.
void attend(std::span<const float> q, std::span<float> out, const KvStore& kv,
            int layer, std::size_t pos, std::size_t store_len,
            const KvRun* chunk, std::size_t kv_dim, std::size_t head_dim,
            std::int64_t sliding_window, AttnScratch& scratch);

}  // namespace llmib::engine
