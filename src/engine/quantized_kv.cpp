#include "engine/quantized_kv.h"

#include <algorithm>

#include "util/check.h"

namespace llmib::engine {

using util::require;

QuantizedKvStore::QuantizedKvStore(std::vector<std::size_t> kv_dims, KvQuant fmt)
    : kv_dims_(std::move(kv_dims)),
      fmt_(fmt),
      kq_(kv_dims_.size()),
      vq_(kv_dims_.size()),
      k_scale_(kv_dims_.size()),
      v_scale_(kv_dims_.size()) {
  require(!kv_dims_.empty(), "QuantizedKvStore: need at least one layer");
  require(fmt_ != KvQuant::kFp32, "QuantizedKvStore: pick kInt8 or kFp8");
}

QuantizedKvStore::QuantizedKvStore(std::vector<std::size_t> kv_dims,
                                   std::unique_ptr<KvStore> prefix, KvQuant fmt)
    : QuantizedKvStore(std::move(kv_dims), fmt) {
  require(prefix != nullptr, "QuantizedKvStore: null prefix store");
  require(prefix->quant() == KvQuant::kFp32,
          "QuantizedKvStore: prefix must be a full-precision store");
  prefix_ = std::move(prefix);
  prefix_len_ = prefix_->size();
}

void QuantizedKvStore::reserve(std::size_t tokens) {
  for (std::size_t l = 0; l < kv_dims_.size(); ++l) {
    kq_[l].reserve(tokens * kv_dims_[l]);
    vq_[l].reserve(tokens * kv_dims_[l]);
    if (fmt_ == KvQuant::kInt8) {
      k_scale_[l].reserve(tokens);
      v_scale_[l].reserve(tokens);
    }
  }
}

std::size_t QuantizedKvStore::stored_bytes() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < kv_dims_.size(); ++l) {
    total += kq_[l].size() + vq_[l].size();
    total += (k_scale_[l].size() + v_scale_[l].size()) * sizeof(float);
  }
  return total;
}

bool QuantizedKvStore::append(int layer, std::span<const float> k,
                              std::span<const float> v) {
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "QuantizedKvStore: bad layer");
  require(layer == appended_layers_, "QuantizedKvStore: layers must append in order");
  require(k.size() == kv_dims_[l] && v.size() == kv_dims_[l],
          "QuantizedKvStore: kv dim mismatch");
  // Quantize straight into the grown tail — no per-token temporaries (the
  // old decorator allocated two vectors per append; resize within reserved
  // capacity never allocates).
  const std::size_t old = kq_[l].size();
  kq_[l].resize(old + k.size());
  vq_[l].resize(old + v.size());
  const float ks = quantize_kv_row(fmt_, k, kq_[l].data() + old);
  const float vs = quantize_kv_row(fmt_, v, vq_[l].data() + old);
  if (fmt_ == KvQuant::kInt8) {
    k_scale_[l].push_back(ks);
    v_scale_[l].push_back(vs);
  }
  if (++appended_layers_ == static_cast<int>(kv_dims_.size())) {
    appended_layers_ = 0;
    ++tokens_;
  }
  return true;
}

bool QuantizedKvStore::append_quantized(int layer, KvQuant fmt,
                                        std::span<const std::uint8_t> k,
                                        std::span<const std::uint8_t> v,
                                        float k_scale, float v_scale) {
  const auto l = static_cast<std::size_t>(layer);
  require(fmt == fmt_, "QuantizedKvStore: append_quantized format mismatch");
  require(l < kv_dims_.size(), "QuantizedKvStore: bad layer");
  require(layer == appended_layers_, "QuantizedKvStore: layers must append in order");
  require(k.size() == kv_dims_[l] && v.size() == kv_dims_[l],
          "QuantizedKvStore: kv dim mismatch");
  kq_[l].insert(kq_[l].end(), k.begin(), k.end());
  vq_[l].insert(vq_[l].end(), v.begin(), v.end());
  if (fmt_ == KvQuant::kInt8) {
    k_scale_[l].push_back(k_scale);
    v_scale_[l].push_back(v_scale);
  }
  if (++appended_layers_ == static_cast<int>(kv_dims_.size())) {
    appended_layers_ = 0;
    ++tokens_;
  }
  return true;
}

std::span<const float> QuantizedKvStore::key(int layer, std::size_t pos) const {
  if (pos < prefix_len_) return prefix_->key(layer, pos);
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "QuantizedKvStore: bad layer");
  const std::size_t dim = kv_dims_[l];
  require(dim > 0, "QuantizedKvStore: layer holds no KV");
  const std::size_t local = pos - prefix_len_;
  require(local < kq_[l].size() / dim, "QuantizedKvStore: bad access");
  if (dq_key_.size() < dim) dq_key_.resize(dim);
  const float scale = fmt_ == KvQuant::kInt8 ? k_scale_[l][local] : 1.0f;
  dequantize_kv_row(fmt_, kq_[l].data() + local * dim, scale,
                    {dq_key_.data(), dim});
  return {dq_key_.data(), dim};
}

std::span<const float> QuantizedKvStore::value(int layer, std::size_t pos) const {
  if (pos < prefix_len_) return prefix_->value(layer, pos);
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "QuantizedKvStore: bad layer");
  const std::size_t dim = kv_dims_[l];
  require(dim > 0, "QuantizedKvStore: layer holds no KV");
  const std::size_t local = pos - prefix_len_;
  require(local < vq_[l].size() / dim, "QuantizedKvStore: bad access");
  if (dq_value_.size() < dim) dq_value_.resize(dim);
  const float scale = fmt_ == KvQuant::kInt8 ? v_scale_[l][local] : 1.0f;
  dequantize_kv_row(fmt_, vq_[l].data() + local * dim, scale,
                    {dq_value_.data(), dim});
  return {dq_value_.data(), dim};
}

void QuantizedKvStore::runs(int layer, std::size_t first, std::size_t len,
                            std::vector<KvRun>& out) const {
  if (len == 0) return;
  const auto l = static_cast<std::size_t>(layer);
  require(l < kv_dims_.size(), "QuantizedKvStore: bad layer");
  const std::size_t dim = kv_dims_[l];
  require(dim > 0, "QuantizedKvStore: layer holds no KV");
  const std::size_t end = first + len;
  // Frozen fp32 prefix first (its own store reports its slabs)...
  if (first < prefix_len_) {
    const std::size_t pend = std::min(end, prefix_len_);
    prefix_->runs(layer, first, pend - first, out);
  }
  // ...then the quantized tail as a single contiguous byte slab.
  if (end > prefix_len_) {
    const std::size_t tfirst = std::max(first, prefix_len_) - prefix_len_;
    const std::size_t tlen = end - prefix_len_ - tfirst;
    require(tfirst + tlen <= kq_[l].size() / dim,
            "QuantizedKvStore: bad run range");
    KvRun r;
    r.len = tlen;
    r.fmt = fmt_;
    r.kq = kq_[l].data() + tfirst * dim;
    r.vq = vq_[l].data() + tfirst * dim;
    if (fmt_ == KvQuant::kInt8) {
      r.k_scale = k_scale_[l].data() + tfirst;
      r.v_scale = v_scale_[l].data() + tfirst;
    }
    out.push_back(r);
  }
}

}  // namespace llmib::engine
