#include "engine/quantized_kv.h"

#include <vector>

#include "util/check.h"

namespace llmib::engine {

QuantizedKvStore::QuantizedKvStore(std::unique_ptr<KvStore> inner,
                                   CachePrecision precision)
    : inner_(std::move(inner)), precision_(precision) {
  util::require(inner_ != nullptr, "QuantizedKvStore: needs a backing store");
}

bool QuantizedKvStore::append(int layer, std::span<const float> k,
                              std::span<const float> v) {
  std::vector<float> kq(k.begin(), k.end());
  std::vector<float> vq(v.begin(), v.end());
  if (precision_ == CachePrecision::kFP8) {
    quant::round_span_fp8(kq);
    quant::round_span_fp8(vq);
  } else {
    quant::round_span_fp16(kq);
    quant::round_span_fp16(vq);
  }
  return inner_->append(layer, kq, vq);
}

std::span<const float> QuantizedKvStore::key(int layer, std::size_t pos) const {
  return inner_->key(layer, pos);
}

std::span<const float> QuantizedKvStore::value(int layer, std::size_t pos) const {
  return inner_->value(layer, pos);
}

void QuantizedKvStore::runs(int layer, std::size_t first, std::size_t len,
                            std::vector<KvRun>& out) const {
  inner_->runs(layer, first, len, out);
}

std::size_t QuantizedKvStore::size() const { return inner_->size(); }

}  // namespace llmib::engine
