#pragma once

#include <span>
#include <vector>

#include "engine/model.h"

namespace llmib::engine {

/// One finished beam-search hypothesis.
struct BeamHypothesis {
  std::vector<TokenId> tokens;   ///< generated tokens (no prompt)
  double log_prob = 0.0;         ///< sum of log-softmax of chosen tokens
};

struct BeamSearchResult {
  /// All kept hypotheses, best (highest log_prob) first.
  std::vector<BeamHypothesis> hypotheses;
  const BeamHypothesis& best() const { return hypotheses.front(); }
};

/// Deterministic beam search (TensorRT-LLM ships this as a first-class
/// sampling mode; paper Appendix C). Expands `beam_width` hypotheses per
/// step, scoring by cumulative log-probability. With beam_width == 1 it is
/// exactly greedy decoding — the invariant the tests pin down; with larger
/// widths the best hypothesis's log-probability can only improve.
///
/// Each live hypothesis keeps its own KV cache rebuilt via fork-free
/// replay; the implementation favors clarity over speed (the engine is a
/// correctness substrate, not a performance one).
BeamSearchResult beam_search(const MiniTransformer& model,
                             std::span<const TokenId> prompt,
                             std::int64_t max_new_tokens, int beam_width);

}  // namespace llmib::engine
