#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "kv/cow.h"

namespace llmib::kv {

using SeqId = std::uint64_t;
using BlockId = std::uint32_t;

/// Aggregate occupancy statistics for either allocator.
struct KvStats {
  std::uint64_t capacity_tokens = 0;   ///< total tokens the pool can hold
  std::uint64_t stored_tokens = 0;     ///< tokens actually cached
  std::uint64_t reserved_tokens = 0;   ///< tokens worth of memory claimed
  std::uint64_t live_sequences = 0;
  /// reserved - stored: paged => slack in each sequence's last block
  /// (internal fragmentation); contiguous => slack in up-front reservations.
  std::uint64_t wasted_tokens() const { return reserved_tokens - stored_tokens; }
  double utilization() const {
    return capacity_tokens ? static_cast<double>(stored_tokens) / capacity_tokens : 0.0;
  }
};

/// vLLM-style fixed-size-block KV allocator (paper §IV-B.2, Fig. 2b).
///
/// The pool is `total_blocks` blocks of `block_size` tokens each. Sequences
/// grow one token at a time; a new block is taken from the free list when
/// the last block fills. Blocks are returned on free in O(blocks).
class PagedKvAllocator {
 public:
  PagedKvAllocator(std::uint32_t total_blocks, std::uint32_t block_size);

  std::uint32_t block_size() const { return block_size_; }
  std::uint32_t total_blocks() const { return total_blocks_; }
  std::uint32_t free_blocks() const { return static_cast<std::uint32_t>(free_list_.size()); }

  /// Register an empty sequence. Throws on duplicate id.
  void create_sequence(SeqId id);

  /// Fork `child` from `parent`: the child shares every one of the
  /// parent's blocks (reference-counted) and starts at the same length.
  /// Appends by either side copy-on-write the shared tail block. This is
  /// vLLM's shared-prompt-prefix mechanism. Throws on unknown parent or
  /// duplicate child.
  void fork_sequence(SeqId parent, SeqId child);

  /// Prefix fork: like fork_sequence, but the child shares only the blocks
  /// covering the parent's first `prefix_tokens` tokens and starts at that
  /// length. When `prefix_tokens` is a multiple of block_size (the prefix
  /// cache always aligns down to block granularity) the child's first append
  /// opens a fresh block and no copy-on-write ever fires on the shared
  /// prefix. Throws if `prefix_tokens` exceeds the parent's length.
  void fork_sequence(SeqId parent, SeqId child, std::uint64_t prefix_tokens);

  /// Append `n` tokens to sequence `id`, grabbing blocks as needed.
  /// Returns false (and rolls back nothing — no partial append) if the pool
  /// cannot supply the blocks. Throws on unknown sequence.
  ///
  /// If the sequence's tail block is shared (after a fork), the append
  /// relocates it copy-on-write; the (src, dst) pairs are appended to
  /// `cow_out` so the storage layer can copy the payload. Passing nullptr
  /// while a COW is required throws (the caller would lose data).
  bool append_tokens(SeqId id, std::uint64_t n,
                     std::vector<CowCopy>* cow_out = nullptr);

  /// Number of tokens currently cached for `id`. Throws on unknown id.
  std::uint64_t sequence_length(SeqId id) const;

  /// The sequence's block table, in append order. Throws on unknown id.
  const std::vector<BlockId>& block_table(SeqId id) const;

  /// Release all blocks of `id`. Throws on unknown id.
  void free_sequence(SeqId id);

  /// Would a fresh sequence of `n` tokens fit right now?
  bool can_fit(std::uint64_t n) const;

  /// Reference count of a block (0 if free). Exposed for tests.
  std::uint32_t block_refcount(BlockId b) const;
  /// Distinct blocks currently allocated (shared blocks counted once).
  std::uint32_t physical_blocks_used() const {
    return total_blocks_ - static_cast<std::uint32_t>(free_list_.size());
  }

  KvStats stats() const;

 private:
  struct Sequence {
    std::uint64_t tokens = 0;
    std::vector<BlockId> blocks;
  };
  std::uint64_t blocks_needed(std::uint64_t tokens) const {
    return (tokens + block_size_ - 1) / block_size_;
  }

  BlockId take_free_block();

  std::uint32_t total_blocks_;
  std::uint32_t block_size_;
  std::vector<BlockId> free_list_;
  std::vector<std::uint32_t> refcount_;
  std::map<SeqId, Sequence> sequences_;
};

/// Traditional monolithic KV allocator: each sequence reserves a contiguous
/// region sized for its maximum possible length up-front (paper: "monolithic
/// and variable-sized, leading to memory fragmentation and reduced
/// concurrency").
class ContiguousKvAllocator {
 public:
  explicit ContiguousKvAllocator(std::uint64_t capacity_tokens);

  /// Reserve a region of `max_tokens` for sequence `id`. Returns false if
  /// the remaining capacity is insufficient. Throws on duplicate id.
  bool reserve(SeqId id, std::uint64_t max_tokens);

  /// Record `n` tokens written into the reservation; throws if it would
  /// overflow the reservation or the id is unknown.
  void append_tokens(SeqId id, std::uint64_t n);

  std::uint64_t sequence_length(SeqId id) const;
  void free_sequence(SeqId id);
  bool can_fit(std::uint64_t max_tokens) const;

  KvStats stats() const;

 private:
  struct Sequence {
    std::uint64_t reserved = 0;
    std::uint64_t tokens = 0;
  };
  std::uint64_t capacity_tokens_;
  std::uint64_t reserved_tokens_ = 0;
  std::map<SeqId, Sequence> sequences_;
};

/// Kernel bandwidth efficiency of paged attention as a function of block
/// size: gather granularity below ~16 tokens wastes DRAM burst bandwidth
/// (paper Fig. 2b: block >= 16 optimal; 16 is 1.27x over 8 at batch 64).
double paged_attention_bw_efficiency(std::uint32_t block_size);

}  // namespace llmib::kv
