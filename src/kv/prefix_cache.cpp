#include "kv/prefix_cache.h"

#include "util/check.h"

namespace llmib::kv {

using util::require;

/// One node of the compressed radix tree. `edge` is the token label on the
/// link from `parent` to this node (children are keyed by their edge's first
/// token, so lookups branch in O(log fanout)). An entry's key always ends
/// exactly at a node — insert splits edges at divergence points — which makes
/// "covered" checks and subtree bookkeeping exact.
struct PrefixCache::Node {
  std::vector<Token> edge;
  Node* parent = nullptr;
  std::map<Token, std::unique_ptr<Node>> children;
  EntryId entry = 0;                ///< entry ending exactly here (0 = none)
  std::size_t subtree_entries = 0;  ///< entries at or below this node
};

struct PrefixCache::Entry {
  std::vector<Token> key;
  Node* node = nullptr;
  std::uint32_t pins = 0;
  std::uint64_t last_used = 0;
};

PrefixCache::PrefixCache() : root_(std::make_unique<Node>()) {}
PrefixCache::~PrefixCache() = default;

PrefixCache::Node* PrefixCache::best_entry_below(Node* node) const {
  Node* best = nullptr;
  std::uint64_t best_tick = 0;
  std::vector<Node*> stack{node};
  while (!stack.empty()) {
    Node* cur = stack.back();
    stack.pop_back();
    if (cur->subtree_entries == 0) continue;
    if (cur->entry != 0) {
      const std::uint64_t t = entries_.at(cur->entry).last_used;
      if (best == nullptr || t > best_tick) {
        best = cur;
        best_tick = t;
      }
    }
    for (const auto& [tok, child] : cur->children) stack.push_back(child.get());
  }
  return best;
}

PrefixCache::Match PrefixCache::lookup(const Token* tokens, std::size_t n) {
  ++stats_.lookups;
  Node* node = root_.get();
  std::size_t depth = 0;
  while (depth < n) {
    auto it = node->children.find(tokens[depth]);
    if (it == node->children.end()) break;
    Node* child = it->second.get();
    std::size_t k = 0;
    while (k < child->edge.size() && depth + k < n &&
           child->edge[k] == tokens[depth + k]) {
      ++k;
    }
    depth += k;
    node = child;
    if (k < child->edge.size()) break;  // diverged (or query ended) mid-edge
  }
  if (depth == 0 || node == root_.get()) return {};
  // Every entry in `node`'s subtree shares exactly the `depth` tokens we
  // matched on the way down; prefer the most recently used one so the handle
  // we return is the least likely to be evicted underneath the caller.
  Node* enode = best_entry_below(node);
  if (enode == nullptr) return {};
  Entry& e = entries_.at(enode->entry);
  e.last_used = ++tick_;
  ++stats_.hits;
  stats_.hit_tokens += depth;
  return {enode->entry, depth};
}

PrefixCache::EntryId PrefixCache::insert(const Token* tokens, std::size_t n) {
  if (n == 0) return 0;
  Node* node = root_.get();
  std::size_t depth = 0;
  bool created = false;
  while (depth < n) {
    auto it = node->children.find(tokens[depth]);
    if (it == node->children.end()) {
      // No branch starts with this token: hang the whole remainder as a leaf.
      auto leaf = std::make_unique<Node>();
      leaf->edge.assign(tokens + depth, tokens + n);
      leaf->parent = node;
      Node* lp = leaf.get();
      node->children.emplace(tokens[depth], std::move(leaf));
      node = lp;
      depth = n;
      created = true;
      break;
    }
    Node* child = it->second.get();
    std::size_t k = 0;
    while (k < child->edge.size() && depth + k < n &&
           child->edge[k] == tokens[depth + k]) {
      ++k;
    }
    if (k == child->edge.size()) {
      node = child;
      depth += k;
      continue;
    }
    if (depth + k == n) {
      // Key ends mid-edge: it is a proper prefix of an existing entry's key,
      // so that entry already covers it.
      return 0;
    }
    // Diverges mid-edge: split the edge at k, then hang a new leaf.
    auto mid = std::make_unique<Node>();
    mid->edge.assign(child->edge.begin(), child->edge.begin() + k);
    mid->parent = node;
    mid->subtree_entries = child->subtree_entries;
    Node* mp = mid.get();
    std::unique_ptr<Node> owned_child = std::move(it->second);
    child->edge.erase(child->edge.begin(),
                      child->edge.begin() + static_cast<std::ptrdiff_t>(k));
    child->parent = mp;
    mid->children.emplace(child->edge.front(), std::move(owned_child));
    it->second = std::move(mid);  // same slot: first token unchanged
    auto leaf = std::make_unique<Node>();
    leaf->edge.assign(tokens + depth + k, tokens + n);
    leaf->parent = mp;
    Node* lp = leaf.get();
    mp->children.emplace(tokens[depth + k], std::move(leaf));
    node = lp;
    depth = n;
    created = true;
    break;
  }
  if (!created) {
    // Landed exactly on an existing node; its subtree necessarily holds an
    // entry whose key covers ours (exact duplicate or a strict extension).
    return 0;
  }
  const EntryId id = next_id_++;
  node->entry = id;
  for (Node* p = node; p != nullptr; p = p->parent) ++p->subtree_entries;
  Entry e;
  e.key.assign(tokens, tokens + n);
  e.node = node;
  e.last_used = ++tick_;
  entries_.emplace(id, std::move(e));
  total_key_tokens_ += n;
  ++stats_.insertions;
  return id;
}

void PrefixCache::pin(EntryId id) {
  auto it = entries_.find(id);
  require(it != entries_.end(), "PrefixCache: pin of unknown entry");
  ++it->second.pins;
}

void PrefixCache::unpin(EntryId id) {
  auto it = entries_.find(id);
  require(it != entries_.end(), "PrefixCache: unpin of unknown entry");
  require(it->second.pins > 0, "PrefixCache: unpin without matching pin");
  --it->second.pins;
}

std::uint32_t PrefixCache::pin_count(EntryId id) const {
  auto it = entries_.find(id);
  require(it != entries_.end(), "PrefixCache: pin_count of unknown entry");
  return it->second.pins;
}

std::optional<PrefixCache::EntryId> PrefixCache::evict_lru() {
  EntryId victim = 0;
  std::uint64_t oldest = 0;
  for (const auto& [id, e] : entries_) {
    if (e.pins > 0) continue;
    if (victim == 0 || e.last_used < oldest) {
      victim = id;
      oldest = e.last_used;
    }
  }
  if (victim == 0) return std::nullopt;
  erase(victim);
  ++stats_.evictions;
  return victim;
}

void PrefixCache::erase(EntryId id) {
  auto it = entries_.find(id);
  require(it != entries_.end(), "PrefixCache: erase of unknown entry");
  Node* node = it->second.node;
  node->entry = 0;
  for (Node* p = node; p != nullptr; p = p->parent) --p->subtree_entries;
  total_key_tokens_ -= it->second.key.size();
  entries_.erase(it);
  prune_upward(node);
}

void PrefixCache::prune_upward(Node* node) {
  while (node != root_.get() && node->entry == 0) {
    Node* parent = node->parent;
    if (node->children.empty()) {
      parent->children.erase(node->edge.front());
      node = parent;
    } else if (node->children.size() == 1) {
      // Re-compress: splice the lone child up into this node's slot.
      auto cit = node->children.begin();
      std::unique_ptr<Node> child = std::move(cit->second);
      child->edge.insert(child->edge.begin(), node->edge.begin(),
                         node->edge.end());
      child->parent = parent;
      auto slot = parent->children.find(child->edge.front());
      slot->second = std::move(child);  // destroys `node`
      return;
    } else {
      return;
    }
  }
}

bool PrefixCache::contains(EntryId id) const {
  return entries_.find(id) != entries_.end();
}

std::size_t PrefixCache::length(EntryId id) const {
  auto it = entries_.find(id);
  require(it != entries_.end(), "PrefixCache: length of unknown entry");
  return it->second.key.size();
}

const std::vector<PrefixCache::Token>& PrefixCache::tokens(EntryId id) const {
  auto it = entries_.find(id);
  require(it != entries_.end(), "PrefixCache: tokens of unknown entry");
  return it->second.key;
}

}  // namespace llmib::kv
