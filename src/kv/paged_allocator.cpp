#include "kv/paged_allocator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace llmib::kv {

using util::require;

PagedKvAllocator::PagedKvAllocator(std::uint32_t total_blocks, std::uint32_t block_size)
    : total_blocks_(total_blocks), block_size_(block_size),
      refcount_(total_blocks, 0) {
  require(total_blocks > 0, "PagedKvAllocator: need at least one block");
  require(block_size > 0, "PagedKvAllocator: block size must be positive");
  free_list_.reserve(total_blocks);
  // Hand out low block ids first (LIFO free list, seeded descending).
  for (std::uint32_t b = total_blocks; b > 0; --b) free_list_.push_back(b - 1);
}

kv::BlockId PagedKvAllocator::take_free_block() {
  const BlockId b = free_list_.back();
  free_list_.pop_back();
  refcount_[b] = 1;
  return b;
}

void PagedKvAllocator::fork_sequence(SeqId parent, SeqId child) {
  auto it = sequences_.find(parent);
  require(it != sequences_.end(), "PagedKvAllocator: unknown fork parent");
  require(sequences_.find(child) == sequences_.end(),
          "PagedKvAllocator: duplicate sequence id");
  Sequence forked = it->second;  // copies the block table
  for (BlockId b : forked.blocks) ++refcount_[b];
  sequences_.emplace(child, std::move(forked));
}

void PagedKvAllocator::fork_sequence(SeqId parent, SeqId child,
                                     std::uint64_t prefix_tokens) {
  auto it = sequences_.find(parent);
  require(it != sequences_.end(), "PagedKvAllocator: unknown fork parent");
  require(sequences_.find(child) == sequences_.end(),
          "PagedKvAllocator: duplicate sequence id");
  require(prefix_tokens <= it->second.tokens,
          "PagedKvAllocator: prefix fork longer than parent");
  Sequence forked;
  forked.tokens = prefix_tokens;
  const std::uint64_t nblocks = blocks_needed(prefix_tokens);
  forked.blocks.assign(it->second.blocks.begin(),
                       it->second.blocks.begin() +
                           static_cast<std::ptrdiff_t>(nblocks));
  for (BlockId b : forked.blocks) ++refcount_[b];
  sequences_.emplace(child, std::move(forked));
}

std::uint32_t PagedKvAllocator::block_refcount(BlockId b) const {
  require(b < total_blocks_, "PagedKvAllocator: bad block id");
  return refcount_[b];
}

void PagedKvAllocator::create_sequence(SeqId id) {
  const bool inserted = sequences_.emplace(id, Sequence{}).second;
  require(inserted, "PagedKvAllocator: duplicate sequence id");
}

bool PagedKvAllocator::append_tokens(SeqId id, std::uint64_t n,
                                     std::vector<CowCopy>* cow_out) {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "PagedKvAllocator: unknown sequence");
  Sequence& seq = it->second;

  // A shared, partially-filled tail block must be privatized before this
  // sequence writes into it (copy-on-write). A full tail block never takes
  // new writes, so it can stay shared.
  const bool tail_write = n > 0 && seq.tokens % block_size_ != 0;
  const bool needs_cow = !seq.blocks.empty() && tail_write &&
                         refcount_[seq.blocks.back()] > 1;

  const std::uint64_t needed_total = blocks_needed(seq.tokens + n);
  const std::uint64_t extra = needed_total - seq.blocks.size();
  if (extra + (needs_cow ? 1 : 0) > free_list_.size()) return false;

  if (needs_cow) {
    require(cow_out != nullptr,
            "PagedKvAllocator: copy-on-write required; pass cow_out");
    const BlockId src = seq.blocks.back();
    const BlockId dst = take_free_block();
    --refcount_[src];
    seq.blocks.back() = dst;
    cow_out->push_back({src, dst});
  }
  for (std::uint64_t i = 0; i < extra; ++i) seq.blocks.push_back(take_free_block());
  seq.tokens += n;
  return true;
}

std::uint64_t PagedKvAllocator::sequence_length(SeqId id) const {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "PagedKvAllocator: unknown sequence");
  return it->second.tokens;
}

const std::vector<BlockId>& PagedKvAllocator::block_table(SeqId id) const {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "PagedKvAllocator: unknown sequence");
  return it->second.blocks;
}

void PagedKvAllocator::free_sequence(SeqId id) {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "PagedKvAllocator: unknown sequence");
  for (BlockId b : it->second.blocks) {
    if (--refcount_[b] == 0) free_list_.push_back(b);
  }
  sequences_.erase(it);
}

bool PagedKvAllocator::can_fit(std::uint64_t n) const {
  return blocks_needed(n) <= free_list_.size();
}

KvStats PagedKvAllocator::stats() const {
  KvStats s;
  s.capacity_tokens = static_cast<std::uint64_t>(total_blocks_) * block_size_;
  s.live_sequences = sequences_.size();
  for (const auto& [id, seq] : sequences_) {
    s.stored_tokens += seq.tokens;
    s.reserved_tokens += seq.blocks.size() * static_cast<std::uint64_t>(block_size_);
  }
  return s;
}

ContiguousKvAllocator::ContiguousKvAllocator(std::uint64_t capacity_tokens)
    : capacity_tokens_(capacity_tokens) {
  require(capacity_tokens > 0, "ContiguousKvAllocator: capacity must be positive");
}

bool ContiguousKvAllocator::reserve(SeqId id, std::uint64_t max_tokens) {
  require(max_tokens > 0, "ContiguousKvAllocator: reservation must be positive");
  require(sequences_.find(id) == sequences_.end(),
          "ContiguousKvAllocator: duplicate sequence id");
  if (reserved_tokens_ + max_tokens > capacity_tokens_) return false;
  sequences_.emplace(id, Sequence{max_tokens, 0});
  reserved_tokens_ += max_tokens;
  return true;
}

void ContiguousKvAllocator::append_tokens(SeqId id, std::uint64_t n) {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "ContiguousKvAllocator: unknown sequence");
  require(it->second.tokens + n <= it->second.reserved,
          "ContiguousKvAllocator: append overflows reservation");
  it->second.tokens += n;
}

std::uint64_t ContiguousKvAllocator::sequence_length(SeqId id) const {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "ContiguousKvAllocator: unknown sequence");
  return it->second.tokens;
}

void ContiguousKvAllocator::free_sequence(SeqId id) {
  auto it = sequences_.find(id);
  require(it != sequences_.end(), "ContiguousKvAllocator: unknown sequence");
  reserved_tokens_ -= it->second.reserved;
  sequences_.erase(it);
}

bool ContiguousKvAllocator::can_fit(std::uint64_t max_tokens) const {
  return reserved_tokens_ + max_tokens <= capacity_tokens_;
}

KvStats ContiguousKvAllocator::stats() const {
  KvStats s;
  s.capacity_tokens = capacity_tokens_;
  s.reserved_tokens = reserved_tokens_;
  s.live_sequences = sequences_.size();
  for (const auto& [id, seq] : sequences_) s.stored_tokens += seq.tokens;
  return s;
}

double paged_attention_bw_efficiency(std::uint32_t block_size) {
  util::require(block_size > 0, "block size must be positive");
  // Gather-granularity curve: tiny blocks pay per-block lookup latency and
  // short-burst DRAM penalties that the kernel cannot hide; blocks >= 16
  // are within a few percent of peak (paper Fig. 2b: ">= 16 optimal",
  // block 16 is 1.27x over block 8 at batch 64).
  const double b = static_cast<double>(block_size);
  const double eff = 1.0 / (1.0 + 0.3 * std::pow(8.0 / b, 3.0));
  return std::clamp(eff, 0.12, 1.0);
}

}  // namespace llmib::kv
