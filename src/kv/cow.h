#pragma once

#include <cstdint>

namespace llmib::kv {

/// A copy-on-write relocation performed during an append to a shared
/// sequence: the storage layer must copy block `src`'s contents into `dst`
/// before the new token is written (vLLM's prefix-sharing mechanism).
struct CowCopy {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

}  // namespace llmib::kv
