#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace llmib::kv {

/// Radix-tree (patricia trie) index over token-id prefixes, in the style of
/// SGLang's RadixAttention: every cached prompt (or conversation history) is
/// one entry; a new request walks the tree to find the *longest* entry whose
/// key shares a prefix with the request's prompt, then the serving layer forks
/// that entry's KV blocks copy-on-write instead of recomputing prefill.
///
/// The cache itself is storage-agnostic: it maps token keys to opaque
/// `EntryId`s and manages recency + pinning. The owner (ServingEngine) keeps
/// the actual `PagedKvStore` behind each entry and frees it on eviction, so
/// the block-refcount invariant — eviction never frees a block some live
/// sequence still references — is enforced by the allocator's refcounts, not
/// by this index.
///
/// Invariants:
///  - Entry keys are non-empty and unique; a key that is a prefix of an
///    existing key is never inserted (the longer entry already serves it).
///  - `evict_lru()` only ever returns an entry with a zero pin count; pinned
///    entries (borrowed by an in-flight request) are immovable.
///  - `lookup()` refreshes the returned entry's recency (LRU touch).
class PrefixCache {
 public:
  using Token = std::int32_t;
  /// Opaque entry handle; 0 is the invalid/"no entry" sentinel.
  using EntryId = std::uint64_t;

  struct Match {
    EntryId entry = 0;        ///< 0 = no entry shares any prefix
    std::size_t matched = 0;  ///< tokens of common prefix with the entry's key
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;        ///< lookups with matched > 0
    std::uint64_t hit_tokens = 0;  ///< sum of matched over hits
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< via evict_lru (explicit erase excluded)
  };

  PrefixCache();
  ~PrefixCache();
  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Longest-prefix match for `tokens`. When several entries share the same
  /// matched prefix the most recently used one is returned. Touches the
  /// returned entry's LRU recency.
  Match lookup(const Token* tokens, std::size_t n);
  Match lookup(const std::vector<Token>& tokens) {
    return lookup(tokens.data(), tokens.size());
  }

  /// Register a key. Returns the new EntryId, or 0 when the key is empty or
  /// already covered (an existing entry's key has `tokens` as a prefix —
  /// including the exact-duplicate case). The caller owns capacity policy:
  /// call evict_lru() first if it wants a bounded entry count.
  EntryId insert(const Token* tokens, std::size_t n);
  EntryId insert(const std::vector<Token>& tokens) {
    return insert(tokens.data(), tokens.size());
  }

  /// Pin/unpin an entry against eviction (counted; pin twice => unpin twice).
  void pin(EntryId id);
  void unpin(EntryId id);
  std::uint32_t pin_count(EntryId id) const;

  /// Remove the least-recently-used unpinned entry, or nullopt when every
  /// entry is pinned (or the cache is empty). The owner must release the
  /// entry's backing store after this returns.
  std::optional<EntryId> evict_lru();

  /// Remove a specific entry (must exist; may be pinned — used for
  /// invalidation, e.g. after a fault wipes the pool).
  void erase(EntryId id);

  bool contains(EntryId id) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Key length in tokens. Throws on unknown entry.
  std::size_t length(EntryId id) const;
  /// The entry's full key. Throws on unknown entry.
  const std::vector<Token>& tokens(EntryId id) const;

  /// Sum of key lengths over all entries (upper bound on cached KV tokens;
  /// the true block-level footprint is lower when entries share blocks).
  std::uint64_t total_key_tokens() const { return total_key_tokens_; }

  const Stats& stats() const { return stats_; }

 private:
  struct Node;
  struct Entry;

  Node* best_entry_below(Node* node) const;  ///< MRU entry node in subtree
  void prune_upward(Node* node);

  std::unique_ptr<Node> root_;
  std::map<EntryId, Entry> entries_;
  EntryId next_id_ = 1;
  std::uint64_t tick_ = 0;  ///< monotonically increasing recency clock
  std::uint64_t total_key_tokens_ = 0;
  Stats stats_;
};

}  // namespace llmib::kv
