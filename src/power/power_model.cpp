#include "power/power_model.h"

#include <algorithm>

#include "util/check.h"

namespace llmib::power {

using util::require;

PowerModel::PowerModel(const hw::AcceleratorSpec& spec)
    : idle_(spec.idle_watts), tdp_(spec.tdp_watts) {
  require(tdp_ > 0, spec.name + ": TDP must be positive");
  require(idle_ >= 0 && idle_ < tdp_, spec.name + ": idle power out of range");
}

double PowerModel::instantaneous_watts(double compute_util, double memory_util) const {
  const double c = std::clamp(compute_util, 0.0, 1.0);
  const double m = std::clamp(memory_util, 0.0, 1.0);
  // Compute activity dominates; a saturated HBM stack alone reaches ~70%
  // of the dynamic range (HBM + fabric power).
  const double activity = std::clamp(0.45 * c + 0.55 * std::max(c, 0.70 * m), 0.0, 1.0);
  return idle_ + (tdp_ - idle_) * activity;
}

void EnergyMeter::add_interval(double seconds, double watts) {
  require(seconds >= 0, "EnergyMeter: negative interval");
  require(watts >= 0, "EnergyMeter: negative power");
  energy_j_ += seconds * watts;
  time_s_ += seconds;
}

double EnergyMeter::average_watts() const {
  return time_s_ > 0 ? energy_j_ / time_s_ : 0.0;
}

}  // namespace llmib::power
