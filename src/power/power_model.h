#pragma once

#include "hw/accelerator.h"

namespace llmib::power {

/// Utilization-driven device power model (substitute for pynvml sampling;
/// see DESIGN.md substitution table).
///
/// P = idle + (tdp - idle) * activity, where activity blends compute and
/// memory utilization: tensor-core activity dominates dynamic power, but a
/// bandwidth-saturated HBM stack also draws a large fraction of TDP.
class PowerModel {
 public:
  explicit PowerModel(const hw::AcceleratorSpec& spec);

  /// Instantaneous draw for one device, utilizations in [0,1].
  double instantaneous_watts(double compute_util, double memory_util) const;

  double idle_watts() const { return idle_; }
  double tdp_watts() const { return tdp_; }

 private:
  double idle_ = 0.0;
  double tdp_ = 0.0;
};

/// Integrates power over simulated time intervals and reports the paper's
/// power metrics: average watts and tokens/sec/watt.
class EnergyMeter {
 public:
  /// Record `seconds` of execution at `watts` (aggregate across devices).
  void add_interval(double seconds, double watts);

  double total_energy_j() const { return energy_j_; }
  double total_time_s() const { return time_s_; }
  /// Average power = total work / total time (paper §III-5e).
  double average_watts() const;

 private:
  double energy_j_ = 0.0;
  double time_s_ = 0.0;
};

}  // namespace llmib::power
