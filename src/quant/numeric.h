#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace llmib::quant {

/// Round a float through IEEE-754 binary16 (round-to-nearest-even),
/// returning the value as float. Overflow saturates to +/-inf like
/// hardware fp16 conversion does.
float round_fp16(float x);

/// Round a float through bfloat16 (truncate mantissa with round-to-nearest).
float round_bf16(float x);

/// Round a float through FP8 E4M3 (the inference format used by H100's
/// transformer engine): 4 exponent bits, 3 mantissa bits, no inf,
/// saturating at +/-448.
float round_fp8_e4m3(float x);

/// Apply a rounding function element-wise.
void round_span_fp16(std::span<float> xs);
void round_span_bf16(std::span<float> xs);
void round_span_fp8(std::span<float> xs);

/// Encode a float as an FP8-E4M3 byte (sign, 4-bit exponent bias 7, 3-bit
/// mantissa; saturates at +/-448, subnormal step 2^-9, NaN -> 0x7F).
/// Inverse of fp8_e4m3_decode on the representable set:
/// fp8_e4m3_decode(fp8_e4m3_encode(x)) == round_fp8_e4m3(x) for finite x.
std::uint8_t fp8_e4m3_encode(float x);

/// Decode an FP8-E4M3 byte (the engine kernels' shared 256-entry table —
/// byte 0x00 decodes to exactly +0.0f).
float fp8_e4m3_decode(std::uint8_t byte);

/// Error metrics between a reference vector and an approximation.
struct QuantError {
  double max_abs = 0.0;
  double rmse = 0.0;
  double rel_rmse = 0.0;  ///< rmse / rms(reference); 0 if reference is zero
};
QuantError quant_error(std::span<const float> reference,
                       std::span<const float> approx);

}  // namespace llmib::quant
