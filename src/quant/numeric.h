#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace llmib::quant {

/// Round a float through IEEE-754 binary16 (round-to-nearest-even),
/// returning the value as float. Overflow saturates to +/-inf like
/// hardware fp16 conversion does.
float round_fp16(float x);

/// Round a float through bfloat16 (truncate mantissa with round-to-nearest).
float round_bf16(float x);

/// Round a float through FP8 E4M3 (the inference format used by H100's
/// transformer engine): 4 exponent bits, 3 mantissa bits, no inf,
/// saturating at +/-448.
float round_fp8_e4m3(float x);

/// Apply a rounding function element-wise.
void round_span_fp16(std::span<float> xs);
void round_span_bf16(std::span<float> xs);
void round_span_fp8(std::span<float> xs);

/// Error metrics between a reference vector and an approximation.
struct QuantError {
  double max_abs = 0.0;
  double rmse = 0.0;
  double rel_rmse = 0.0;  ///< rmse / rms(reference); 0 if reference is zero
};
QuantError quant_error(std::span<const float> reference,
                       std::span<const float> approx);

}  // namespace llmib::quant
