#include "quant/int4.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quant/numeric.h"

namespace llmib::quant {

Int4Matrix Int4Matrix::quantize(std::span<const float> weights, std::size_t rows,
                                std::size_t cols, std::size_t group_size) {
  if (weights.size() != rows * cols)
    throw std::invalid_argument("Int4Matrix::quantize: size mismatch");
  if (group_size == 0 || cols % group_size != 0)
    throw std::invalid_argument("Int4Matrix::quantize: group_size must divide cols");
  if (cols % 2 != 0)
    throw std::invalid_argument("Int4Matrix::quantize: cols must be even to pack");

  Int4Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.group_size_ = group_size;
  const std::size_t groups = cols / group_size;
  m.packed_.assign(rows * cols / 2, 0);
  m.scales_.resize(rows * groups);
  m.zeros_.resize(rows * groups);

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t g = 0; g < groups; ++g) {
      const float* w = weights.data() + r * cols + g * group_size;
      float lo = w[0], hi = w[0];
      for (std::size_t i = 1; i < group_size; ++i) {
        lo = std::min(lo, w[i]);
        hi = std::max(hi, w[i]);
      }
      // Keep 0 representable (standard GPTQ convention) and avoid a zero
      // scale for constant groups.
      lo = std::min(lo, 0.0f);
      hi = std::max(hi, 0.0f);
      float scale = (hi - lo) / 15.0f;
      if (scale == 0.0f) scale = 1.0f;
      // Zero-point on the integer grid, stored dequantized-friendly.
      const float zero = std::clamp(std::nearbyintf(-lo / scale), 0.0f, 15.0f);
      // Store scale/zero at fp16 granularity like real checkpoints do.
      const float scale16 = round_fp16(scale);
      m.scales_[r * groups + g] = scale16;
      m.zeros_[r * groups + g] = zero;
      for (std::size_t i = 0; i < group_size; ++i) {
        const float q = std::nearbyintf(w[i] / scale16 + zero);
        const auto code =
            static_cast<std::uint8_t>(std::clamp(q, 0.0f, 15.0f));
        const std::size_t c = g * group_size + i;
        const std::size_t byte = (r * cols + c) / 2;
        if (c % 2 == 0) {
          m.packed_[byte] = static_cast<std::uint8_t>((m.packed_[byte] & 0xF0) | code);
        } else {
          m.packed_[byte] =
              static_cast<std::uint8_t>((m.packed_[byte] & 0x0F) | (code << 4));
        }
      }
    }
  }
  return m;
}

std::uint8_t Int4Matrix::code_at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Int4Matrix::code_at: index out of range");
  const std::uint8_t byte = packed_[(r * cols_ + c) / 2];
  return c % 2 == 0 ? (byte & 0x0F) : (byte >> 4);
}

float Int4Matrix::value_at(std::size_t r, std::size_t c) const {
  const std::size_t groups = cols_ / group_size_;
  const std::size_t g = c / group_size_;
  const float scale = scales_[r * groups + g];
  const float zero = zeros_[r * groups + g];
  return (static_cast<float>(code_at(r, c)) - zero) * scale;
}

std::vector<float> Int4Matrix::dequantize() const {
  std::vector<float> out(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r * cols_ + c] = value_at(r, c);
  return out;
}

void Int4Matrix::gemv(std::span<const float> x, std::span<float> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw std::invalid_argument("Int4Matrix::gemv: shape mismatch");
  const std::size_t groups = cols_ / group_size_;
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t g = 0; g < groups; ++g) {
      const float scale = scales_[r * groups + g];
      const float zero = zeros_[r * groups + g];
      // Accumulate integer dot and input sum per group, rescale once —
      // how real W4 kernels amortize the dequantization.
      double int_dot = 0.0, x_sum = 0.0;
      for (std::size_t i = 0; i < group_size_; ++i) {
        const std::size_t c = g * group_size_ + i;
        int_dot += static_cast<double>(code_at(r, c)) * x[c];
        x_sum += x[c];
      }
      acc += scale * (int_dot - zero * x_sum);
    }
    y[r] = static_cast<float>(acc);
  }
}

std::size_t Int4Matrix::bytes() const {
  return packed_.size() + (scales_.size() + zeros_.size()) * 2;
}

}  // namespace llmib::quant
