#include "quant/int8.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "engine/kernels/kernels.h"

namespace llmib::quant {

Int8Matrix Int8Matrix::quantize(std::span<const float> weights, std::size_t rows,
                                std::size_t cols) {
  if (weights.size() != rows * cols)
    throw std::invalid_argument("Int8Matrix::quantize: size mismatch");
  Int8Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_.resize(rows * cols);
  m.scales_.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    float max_abs = 0.0f;
    for (std::size_t c = 0; c < cols; ++c)
      max_abs = std::max(max_abs, std::fabs(weights[r * cols + c]));
    const float scale = max_abs / 127.0f;
    m.scales_[r] = scale;
    if (scale == 0.0f) {
      std::fill_n(m.data_.begin() + static_cast<std::ptrdiff_t>(r * cols), cols,
                  std::int8_t{0});
      continue;
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const float q = weights[r * cols + c] / scale;
      const long rounded = std::lroundf(q);
      m.data_[r * cols + c] =
          static_cast<std::int8_t>(std::clamp(rounded, -127l, 127l));
    }
  }
  return m;
}

std::vector<float> Int8Matrix::dequantize() const {
  std::vector<float> out(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out[r * cols_ + c] = static_cast<float>(data_[r * cols_ + c]) * scales_[r];
  return out;
}

void Int8Matrix::gemv(std::span<const float> x, std::span<float> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw std::invalid_argument("Int8Matrix::gemv: shape mismatch");
  // W8A16 GEMV through the dispatched kernel layer: the AVX2 backend widens
  // 8 weights at a time (cvtepi8_epi32 -> ps) and FMAs against x, the
  // portable one runs 8 fp32 accumulator lanes (docs/KERNELS.md).
  engine::kernels::active().gemv_i8(data_.data(), scales_.data(), x.data(),
                                    y.data(), rows_, cols_);
}

QuantizedVector quantize_vector(std::span<const float> x) {
  QuantizedVector q;
  q.data.resize(x.size());
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::fabs(v));
  q.scale = max_abs / 127.0f;
  if (q.scale == 0.0f) return q;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const long rounded = std::lroundf(x[i] / q.scale);
    q.data[i] = static_cast<std::int8_t>(std::clamp(rounded, -127l, 127l));
  }
  return q;
}

void gemv_w8a8(const Int8Matrix& w, const QuantizedVector& x, std::span<float> y) {
  if (x.data.size() != w.cols() || y.size() != w.rows())
    throw std::invalid_argument("gemv_w8a8: shape mismatch");
  const auto data = w.data();
  const auto scales = w.scales();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    std::int64_t acc = 0;
    const std::int8_t* row = data.data() + r * w.cols();
    for (std::size_t c = 0; c < w.cols(); ++c)
      acc += static_cast<std::int64_t>(row[c]) * x.data[c];
    y[r] = static_cast<float>(acc) * scales[r] * x.scale;
  }
}

}  // namespace llmib::quant
