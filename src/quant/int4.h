#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace llmib::quant {

/// Group-wise 4-bit weight quantization (the GPTQ/AWQ storage scheme the
/// paper's frameworks ship: weights packed two-per-byte with one fp16-ish
/// scale and zero-point per group of `group_size` input channels).
///
/// Unlike Int8Matrix's symmetric per-row scheme, int4 needs asymmetric
/// (zero-pointed) quantization and small groups to stay accurate at 16
/// levels.
class Int4Matrix {
 public:
  /// Quantize `weights` (rows x cols, row-major). `group_size` must divide
  /// cols. Each (row, group) gets scale = (max-min)/15 and a zero-point.
  static Int4Matrix quantize(std::span<const float> weights, std::size_t rows,
                             std::size_t cols, std::size_t group_size = 128);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t group_size() const { return group_size_; }

  /// Unpacked nibble for (r, c), in [0, 15].
  std::uint8_t code_at(std::size_t r, std::size_t c) const;
  /// Dequantized weight at (r, c).
  float value_at(std::size_t r, std::size_t c) const;

  std::vector<float> dequantize() const;

  /// y = W x with on-the-fly dequantization (W4A16).
  void gemv(std::span<const float> x, std::span<float> y) const;

  /// Storage footprint in bytes: packed nibbles + per-group scale/zero
  /// stored as fp16-width (2 bytes each).
  std::size_t bytes() const;

 private:
  std::size_t rows_ = 0, cols_ = 0, group_size_ = 0;
  std::vector<std::uint8_t> packed_;  // two nibbles per byte, row-major
  std::vector<float> scales_;         // rows * (cols/group_size)
  std::vector<float> zeros_;          // same shape; dequant = (q - z) * s
};

}  // namespace llmib::quant
