#include "quant/numeric.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "engine/kernels/kernels.h"

namespace llmib::quant {

namespace {

// Round-to-nearest-even reduction of a binary32 value to a narrower
// mantissa, keeping the float exponent range (used for bf16).
float truncate_mantissa_rne(float x, int keep_bits) {
  const auto bits = std::bit_cast<std::uint32_t>(x);
  const int drop = 23 - keep_bits;
  const std::uint32_t mask = (1u << drop) - 1u;
  const std::uint32_t remainder = bits & mask;
  std::uint32_t truncated = bits & ~mask;
  const std::uint32_t halfway = 1u << (drop - 1);
  if (remainder > halfway ||
      (remainder == halfway && (truncated & (1u << drop)))) {
    truncated += 1u << drop;  // may carry into exponent; that is correct RNE
  }
  return std::bit_cast<float>(truncated);
}

}  // namespace

float round_fp16(float x) {
  if (std::isnan(x)) return x;
  const float ax = std::fabs(x);
  if (ax > 65504.0f) return std::copysign(INFINITY, x);
  if (ax < 5.9604645e-8f) return std::copysign(0.0f, x);  // below subnormal min
  // Subnormal fp16 range: quantize to multiples of 2^-24.
  if (ax < 6.1035156e-5f) {
    const float q = 5.9604645e-8f;  // 2^-24
    return std::copysign(std::nearbyint(ax / q) * q, x);
  }
  return truncate_mantissa_rne(x, 10);
}

float round_bf16(float x) {
  if (std::isnan(x) || std::isinf(x)) return x;
  return truncate_mantissa_rne(x, 7);
}

float round_fp8_e4m3(float x) {
  if (std::isnan(x)) return x;
  const float kMax = 448.0f;  // E4M3 max normal
  if (std::fabs(x) >= kMax) return std::copysign(kMax, x);  // saturating
  if (x == 0.0f) return x;
  const float ax = std::fabs(x);
  // Normal range starts at 2^-6; subnormal step is 2^-9.
  if (ax < 0.015625f) {  // 2^-6
    const float q = 0.001953125f;  // 2^-9
    return std::copysign(std::nearbyint(ax / q) * q, x);
  }
  return truncate_mantissa_rne(x, 3);
}

std::uint8_t fp8_e4m3_encode(float x) {
  if (std::isnan(x)) return 0x7F;
  const float r = round_fp8_e4m3(x);  // saturates and snaps to the grid
  const std::uint8_t sign = std::signbit(r) ? 0x80u : 0x00u;
  const float ax = std::fabs(r);
  if (ax == 0.0f) return sign;
  if (ax < 0.015625f) {  // subnormal: exponent field 0, mantissa in 2^-9 steps
    const auto mant = static_cast<std::uint8_t>(std::lrint(ax / 0.001953125f));
    return sign | mant;
  }
  int e = 0;
  const float frac = std::frexp(ax, &e);  // ax = frac * 2^e, frac in [0.5, 1)
  // Stored form (1 + m/8) * 2^(e-1): after round_fp8_e4m3, frac*2 - 1 is an
  // exact multiple of 1/8, so the mantissa packs without further rounding.
  const auto exp_field = static_cast<std::uint8_t>((e - 1) + 7);
  const auto mant = static_cast<std::uint8_t>(std::lrint((frac * 2.0f - 1.0f) * 8.0f));
  return sign | static_cast<std::uint8_t>(exp_field << 3) | mant;
}

float fp8_e4m3_decode(std::uint8_t byte) {
  return engine::kernels::fp8_e4m3_table()[byte];
}

void round_span_fp16(std::span<float> xs) {
  for (float& x : xs) x = round_fp16(x);
}
void round_span_bf16(std::span<float> xs) {
  for (float& x : xs) x = round_bf16(x);
}
void round_span_fp8(std::span<float> xs) {
  for (float& x : xs) x = round_fp8_e4m3(x);
}

QuantError quant_error(std::span<const float> reference,
                       std::span<const float> approx) {
  if (reference.size() != approx.size())
    throw std::invalid_argument("quant_error: size mismatch");
  QuantError e;
  if (reference.empty()) return e;
  double se = 0, ref_sq = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = static_cast<double>(reference[i]) - approx[i];
    e.max_abs = std::max(e.max_abs, std::fabs(d));
    se += d * d;
    ref_sq += static_cast<double>(reference[i]) * reference[i];
  }
  e.rmse = std::sqrt(se / static_cast<double>(reference.size()));
  const double ref_rms = std::sqrt(ref_sq / static_cast<double>(reference.size()));
  e.rel_rmse = ref_rms > 0 ? e.rmse / ref_rms : 0.0;
  return e;
}

}  // namespace llmib::quant
