#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace llmib::quant {

/// A row-major matrix quantized to int8 with one symmetric scale per output
/// row (per-channel weight quantization, the scheme TRT-LLM/vLLM use for
/// W8 inference and the one our mini engine runs for the paper's Fig. 3).
class Int8Matrix {
 public:
  /// Quantize `weights` (rows x cols, row-major fp32). Each row r is scaled
  /// by max|w[r,:]| / 127. All-zero rows get scale 0 and dequantize to 0.
  static Int8Matrix quantize(std::span<const float> weights, std::size_t rows,
                             std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::span<const std::int8_t> data() const { return data_; }
  std::span<const float> scales() const { return scales_; }

  /// Reconstruct fp32 weights (for error analysis / tests).
  std::vector<float> dequantize() const;

  /// y = W x with int32 accumulation then per-row rescale.
  /// x.size() == cols, y.size() == rows.
  void gemv(std::span<const float> x, std::span<float> y) const;

  /// Storage footprint in bytes (data + scales).
  std::size_t bytes() const { return data_.size() + scales_.size() * sizeof(float); }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::int8_t> data_;
  std::vector<float> scales_;
};

/// Dynamic per-tensor activation quantization: returns the int8 vector and
/// its scale (max|x| / 127). Used for the fully-int8 matmul path.
struct QuantizedVector {
  std::vector<std::int8_t> data;
  float scale = 0.0f;
};
QuantizedVector quantize_vector(std::span<const float> x);

/// Fully integer GEMV: int8 weights x int8 activations with int32
/// accumulation, rescaled to fp32. Mirrors the W8A8 path.
void gemv_w8a8(const Int8Matrix& w, const QuantizedVector& x, std::span<float> y);

}  // namespace llmib::quant
