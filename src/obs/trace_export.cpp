#include "obs/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <variant>

namespace llmib::obs {

namespace {

std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(*p) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", *p);
          out += buf;
        } else {
          out += *p;
        }
    }
  }
  return out;
}

std::string format_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void append_event(std::string& out, const SpanEvent& ev) {
  const int pid = ev.simulated ? 2 : 1;
  out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
         cat_name(ev.cat) + "\",\"ph\":\"" + (ev.instant ? "i" : "X") +
         "\",\"ts\":" + format_us(ev.ts_us);
  if (!ev.instant) out += ",\"dur\":" + format_us(ev.dur_us);
  out += ",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(ev.tid);
  if (ev.instant) out += ",\"s\":\"t\"";
  if (ev.arg >= 0) out += ",\"args\":{\"v\":" + std::to_string(ev.arg) + "}";
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";
  bool wall_seen = false;
  bool sim_seen = false;
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    append_event(out, ev);
    (ev.simulated ? sim_seen : wall_seen) = true;
  }
  // Metadata events label the two clock-domain processes in the viewer.
  if (wall_seen) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"wall clock\"}}";
  }
  if (sim_seen) {
    if (!first) out += ",\n";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
           "\"args\":{\"name\":\"simulated clock\"}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string chrome_trace_json() {
  return chrome_trace_json(TraceBuffer::global().events());
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_trace_json();
  return static_cast<bool>(f);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough to validate traces
// without an external dependency. Numbers become double, everything else is
// the obvious mapping.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out)) {
      error = error_.empty() ? "invalid JSON" : error_;
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      error = "trailing characters after JSON document";
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty())
      error_ = msg + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string str;
      if (!parse_string(str)) return false;
      out.v = std::move(str);
      return true;
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0))
      return parse_number(out);
    return fail(std::string("unexpected character '") + c + "'");
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) {
      out.v = std::move(obj);
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key string");
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      JsonValue val;
      if (!parse_value(val)) return false;
      (*obj)[std::move(key)] = std::move(val);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    out.v = std::move(obj);
    return true;
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) {
      out.v = std::move(arr);
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue val;
      if (!parse_value(val)) return false;
      arr->push_back(std::move(val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    out.v = std::move(arr);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])) == 0)
                return fail("bad \\u escape");
            }
            // Validation only needs well-formedness, not exact code points.
            out += '?';
            pos_ += 4;
            break;
          }
          default:
            return fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
    if (consume('.')) {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0)
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0)
        ++pos_;
    }
    if (pos_ == start) return fail("invalid number");
    try {
      out.v = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return fail("invalid number");
    }
    return true;
  }

  bool parse_keyword(JsonValue& out) {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.v = true;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.v = false;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.v = nullptr;
      return true;
    }
    return fail("invalid keyword");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

struct CheckedSpan {
  double ts = 0.0;
  double end = 0.0;
  std::string name;
};

}  // namespace

TraceCheck validate_chrome_trace(const std::string& json) {
  TraceCheck check;
  JsonValue doc;
  if (!JsonParser(json).parse(doc, check.error)) return check;
  check.parsed = true;

  if (!doc.is_object()) {
    check.error = "top-level value is not an object";
    return check;
  }
  const auto events_it = doc.object().find("traceEvents");
  if (events_it == doc.object().end() || !events_it->second.is_array()) {
    check.error = "missing traceEvents array";
    return check;
  }

  // Collect spans per (pid, tid) track.
  std::map<std::pair<double, double>, std::vector<CheckedSpan>> tracks;
  for (const JsonValue& ev : events_it->second.array()) {
    if (!ev.is_object()) {
      check.error = "traceEvents entry is not an object";
      return check;
    }
    const JsonObject& o = ev.object();
    const auto name = o.find("name");
    const auto ph = o.find("ph");
    if (name == o.end() || !name->second.is_string() || ph == o.end() ||
        !ph->second.is_string()) {
      check.error = "event missing name/ph";
      return check;
    }
    const std::string& phase = ph->second.str();
    if (phase == "M") continue;  // metadata
    const auto ts = o.find("ts");
    if (ts == o.end() || !ts->second.is_number()) {
      check.error = "event '" + name->second.str() + "' missing ts";
      return check;
    }
    if (phase == "i" || phase == "I") {
      ++check.instant_count;
      continue;
    }
    if (phase != "X") {
      check.error = "unsupported event phase '" + phase + "'";
      return check;
    }
    const auto dur = o.find("dur");
    if (dur == o.end() || !dur->second.is_number()) {
      check.error = "X event '" + name->second.str() + "' missing dur";
      return check;
    }
    double pid = 0.0, tid = 0.0;
    if (const auto it = o.find("pid"); it != o.end() && it->second.is_number())
      pid = it->second.number();
    if (const auto it = o.find("tid"); it != o.end() && it->second.is_number())
      tid = it->second.number();
    CheckedSpan span;
    span.ts = ts->second.number();
    span.end = span.ts + dur->second.number();
    span.name = name->second.str();
    tracks[{pid, tid}].push_back(std::move(span));
    ++check.span_count;
  }

  // On each track, sorted by start (ties: longer first), a stack-based scan
  // verifies every span is either contained in the open span or disjoint
  // from it. Epsilon absorbs the exporter's %.3f rounding.
  constexpr double kEps = 2e-3;
  for (auto& [key, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const CheckedSpan& a, const CheckedSpan& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.end > b.end;
    });
    std::vector<const CheckedSpan*> stack;
    for (const CheckedSpan& span : spans) {
      while (!stack.empty() && span.ts >= stack.back()->end - kEps) stack.pop_back();
      if (!stack.empty() && span.end > stack.back()->end + kEps) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "span '%s' [%g, %g] overlaps but does not nest inside "
                      "'%s' [%g, %g] on track (%g, %g)",
                      span.name.c_str(), span.ts, span.end,
                      stack.back()->name.c_str(), stack.back()->ts,
                      stack.back()->end, key.first, key.second);
        check.error = buf;
        return check;
      }
      stack.push_back(&span);
    }
  }
  check.balanced = true;
  return check;
}

}  // namespace llmib::obs
