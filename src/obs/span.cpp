#include "obs/span.h"

#include <algorithm>
#include <chrono>

namespace llmib::obs {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kEngine: return "engine";
    case Cat::kSim: return "sim";
    case Cat::kSched: return "sched";
    case Cat::kPool: return "pool";
    case Cat::kFault: return "fault";
    case Cat::kBench: return "bench";
  }
  return "?";
}

namespace detail {
std::atomic<bool> g_tracing{false};
}

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

std::uint32_t claim_sim_track() {
  static std::atomic<std::uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Microseconds since the process's trace epoch (first use).
double wall_now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch).count();
}

thread_local std::uint16_t tls_depth = 0;

}  // namespace

/// Fixed-capacity per-thread ring. The push path locks only this ring's
/// mutex (uncontended except against a concurrent drain), overwriting the
/// oldest retained event when full.
struct TraceBuffer::ThreadRing {
  std::mutex mu;
  std::vector<SpanEvent> buf;  // capacity-sized once first event arrives
  std::size_t capacity = 0;
  std::size_t head = 0;  // next write index once full
  std::size_t size = 0;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;

  void push(const SpanEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    if (size < capacity) {
      buf.push_back(ev);
      ++size;
      return;
    }
    buf[head] = ev;  // overwrite oldest
    head = (head + 1) % capacity;
    ++dropped;
  }
};

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* b = new TraceBuffer();  // never destroyed: worker
  return *b;                                  // threads may outlive main's statics
}

TraceBuffer::ThreadRing& TraceBuffer::ring_for_this_thread() {
  thread_local ThreadRing* ring = nullptr;
  thread_local std::uint64_t ring_generation = ~0ull;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (ring == nullptr || ring_generation != gen) {
    std::lock_guard<std::mutex> lock(mu_);
    auto owned = std::make_unique<ThreadRing>();
    owned->capacity = capacity_ == 0 ? 1 : capacity_;
    owned->buf.reserve(owned->capacity);
    owned->tid = static_cast<std::uint32_t>(rings_.size());
    ring = owned.get();
    rings_.push_back(std::move(owned));
    ring_generation = generation_.load(std::memory_order_relaxed);
  }
  return *ring;
}

void TraceBuffer::record(const SpanEvent& ev) {
  ThreadRing& ring = ring_for_this_thread();
  SpanEvent copy = ev;
  if (!copy.simulated) copy.tid = ring.tid;
  ring.push(copy);
}

std::vector<SpanEvent> TraceBuffer::events() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> rl(ring->mu);
      out.insert(out.end(), ring->buf.begin(), ring->buf.end());
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.simulated != b.simulated) return !a.simulated;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // parents (longer) before children at same start
  });
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rl(ring->mu);
    n += ring->dropped;
  }
  return n;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rl(ring->mu);
    n += ring->size;
  }
  return n;
}

void TraceBuffer::detach_rings_locked() {
  // Old rings stay alive on the retired list — a thread mid-record may
  // still hold a pointer into one. Bumping the generation makes every
  // thread re-register on its next event, so a retired ring only ever
  // absorbs that thread's single in-flight push.
  for (auto& r : rings_) retired_.push_back(std::move(r));
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  detach_rings_locked();
}

void TraceBuffer::set_capacity_per_thread(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap == 0 ? 1 : cap;
  detach_rings_locked();
}

std::size_t TraceBuffer::capacity_per_thread() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

#if !defined(LLMIB_OBS_DISABLED)

void Span::open(const char* name, Cat cat, std::int64_t arg) {
  name_ = name;
  cat_ = cat;
  arg_ = arg;
  depth_ = tls_depth++;
  start_us_ = wall_now_us();
}

void Span::close() {
  SpanEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ts_us = start_us_;
  ev.dur_us = wall_now_us() - start_us_;
  ev.depth = depth_;
  ev.arg = arg_;
  if (tls_depth > 0) --tls_depth;
  TraceBuffer::global().record(ev);
}

void emit_span(const char* name, Cat cat, double start_s, double dur_s,
               std::uint32_t track, std::int64_t arg) {
  if (!tracing_enabled()) return;
  SpanEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = start_s * 1e6;
  ev.dur_us = dur_s * 1e6;
  ev.tid = track;
  ev.simulated = true;
  ev.arg = arg;
  TraceBuffer::global().record(ev);
}

void emit_instant(const char* name, Cat cat, double t_s, std::uint32_t track,
                  std::int64_t arg) {
  if (!tracing_enabled()) return;
  SpanEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = t_s * 1e6;
  ev.tid = track;
  ev.simulated = true;
  ev.instant = true;
  ev.arg = arg;
  TraceBuffer::global().record(ev);
}

void instant(const char* name, Cat cat, std::int64_t arg) {
  if (!tracing_enabled()) return;
  SpanEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = wall_now_us();
  ev.instant = true;
  ev.arg = arg;
  TraceBuffer::global().record(ev);
}

#endif  // !LLMIB_OBS_DISABLED

}  // namespace llmib::obs
