#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/snapshot.h"

namespace llmib::obs {

/// Monotonic integer counter. Relaxed atomic adds: totals are deterministic
/// under any interleaving (integer addition commutes), which is the property
/// the pool-backed sweep determinism test pins down.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time double. set() is last-writer-wins (call from one logical
/// owner); max_of() is a lock-free running maximum safe from any thread.
/// Gauges are excluded from the determinism contract.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void max_of(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram over integer observations (use nanoseconds for
/// durations). Bucket layout is fixed at registration; counts and sum are
/// integers, so aggregation is deterministic.
class Histogram {
 public:
  /// `bounds`: ascending inclusive upper bounds; a final +inf bucket is
  /// implicit. Throws std::invalid_argument if not strictly ascending.
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);
  HistogramValue value(const std::string& name) const;
  void reset();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> sum_{0};
};

/// Ascending power-of-~4 latency buckets from 1us to ~17s, in nanoseconds —
/// the default layout for duration histograms.
std::vector<std::int64_t> default_latency_bounds_ns();

/// Process-wide metrics registry: the metric half of the observability
/// facade (the span half lives in obs/span.h). Registration takes a lock;
/// the returned references are stable for the process lifetime and
/// increment lock-free, so hot paths cache them in a function-local static:
///
///   static obs::Counter& c = obs::Registry::global().counter("sched.admitted");
///   c.add(n);
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-registering an existing histogram name returns the existing
  /// instance (the first bucket layout wins).
  Histogram& histogram(const std::string& name, std::vector<std::int64_t> bounds);

  /// Point-in-time export of every registered metric, sorted by name.
  Snapshot snapshot() const;

  /// Zero every value, keeping registrations (handles stay valid). For
  /// tests that compare totals across runs.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Convenience for cold paths (does a map lookup under the registry lock).
inline void count(const std::string& name, std::int64_t n = 1) {
  Registry::global().counter(name).add(n);
}

}  // namespace llmib::obs
