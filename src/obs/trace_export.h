#pragma once

#include <string>
#include <vector>

#include "obs/span.h"

namespace llmib::obs {

/// Render span events as Chrome trace-event JSON (the format chrome://tracing
/// and Perfetto load). Wall-clock events are exported under pid 1
/// ("process: wall"), simulated-clock events under pid 2 ("process: sim"),
/// so the two time domains never share a track. Spans are "X" complete
/// events, instants are "i".
std::string chrome_trace_json(const std::vector<SpanEvent>& events);

/// chrome_trace_json over the global TraceBuffer's current contents.
std::string chrome_trace_json();

/// Write the global trace to `path`; returns false (and leaves no partial
/// file guarantees) on I/O failure.
bool write_chrome_trace_file(const std::string& path);

/// Outcome of validating a Chrome trace JSON document.
struct TraceCheck {
  bool parsed = false;          ///< document is syntactically valid JSON
  bool balanced = false;        ///< spans nest properly on every track
  std::size_t span_count = 0;   ///< "X" events seen
  std::size_t instant_count = 0;  ///< "i" events seen
  std::string error;            ///< first failure description, empty if ok
  bool ok() const { return parsed && balanced; }
};

/// Parse + structurally validate a Chrome trace document: well-formed JSON,
/// a traceEvents array, every event carrying name/ph/ts (and dur for "X"),
/// and proper nesting — on each (pid, tid) track, spans either contain one
/// another or are disjoint (with a small epsilon for float rounding).
/// Overlapping-but-not-nested spans on one track are reported unbalanced.
TraceCheck validate_chrome_trace(const std::string& json);

}  // namespace llmib::obs
