#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>

namespace llmib::obs {

namespace {

template <typename T>
typename std::vector<T>::iterator lower_by_name(std::vector<T>& v,
                                                const std::string& name) {
  return std::lower_bound(v.begin(), v.end(), name,
                          [](const T& a, const std::string& b) { return a.name < b; });
}

template <typename T>
const T* find_by_name(const std::vector<T>& v, const std::string& name) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const T& a, const std::string& b) { return a.name < b; });
  return it != v.end() && it->name == name ? &*it : nullptr;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void Snapshot::set_counter(const std::string& name, std::int64_t value) {
  auto it = lower_by_name(counters_, name);
  if (it != counters_.end() && it->name == name) {
    it->value = value;
  } else {
    counters_.insert(it, {name, value});
  }
}

void Snapshot::set_gauge(const std::string& name, double value) {
  auto it = lower_by_name(gauges_, name);
  if (it != gauges_.end() && it->name == name) {
    it->value = value;
  } else {
    gauges_.insert(it, {name, value});
  }
}

void Snapshot::add_histogram(HistogramValue h) {
  auto it = lower_by_name(histograms_, h.name);
  if (it != histograms_.end() && it->name == h.name) {
    *it = std::move(h);
  } else {
    histograms_.insert(it, std::move(h));
  }
}

std::int64_t Snapshot::counter_or(const std::string& name,
                                  std::int64_t fallback) const {
  const auto* c = find_by_name(counters_, name);
  return c ? c->value : fallback;
}

double Snapshot::gauge_or(const std::string& name, double fallback) const {
  const auto* g = find_by_name(gauges_, name);
  return g ? g->value : fallback;
}

bool Snapshot::has_counter(const std::string& name) const {
  return find_by_name(counters_, name) != nullptr;
}

bool Snapshot::has_gauge(const std::string& name) const {
  return find_by_name(gauges_, name) != nullptr;
}

const HistogramValue* Snapshot::histogram(const std::string& name) const {
  return find_by_name(histograms_, name);
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& c : other.counters_)
    set_counter(c.name, counter_or(c.name, 0) + c.value);
  for (const auto& g : other.gauges_) set_gauge(g.name, g.value);
  for (const auto& h : other.histograms_) {
    const HistogramValue* mine = histogram(h.name);
    if (mine == nullptr || mine->bounds != h.bounds) {
      add_histogram(h);  // replace on bucket-layout mismatch
      continue;
    }
    HistogramValue merged = *mine;
    for (std::size_t i = 0; i < merged.counts.size() && i < h.counts.size(); ++i)
      merged.counts[i] += h.counts[i];
    merged.sum += h.sum;
    add_histogram(std::move(merged));
  }
}

std::string Snapshot::to_csv() const {
  std::string out = "metric,type,value\n";
  for (const auto& c : counters_)
    out += c.name + ",counter," + std::to_string(c.value) + "\n";
  for (const auto& g : gauges_)
    out += g.name + ",gauge," + format_double(g.value) + "\n";
  for (const auto& h : histograms_) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string bucket =
          i < h.bounds.size() ? "le_" + std::to_string(h.bounds[i]) : "le_inf";
      out += h.name + "." + bucket + ",histogram," + std::to_string(h.counts[i]) +
             "\n";
    }
    out += h.name + ".sum,histogram," + std::to_string(h.sum) + "\n";
    out += h.name + ".count,histogram," + std::to_string(h.total()) + "\n";
  }
  return out;
}

bool Snapshot::deterministic_equal(const Snapshot& other) const {
  if (counters_.size() != other.counters_.size()) return false;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name != other.counters_[i].name ||
        counters_[i].value != other.counters_[i].value)
      return false;
  }
  if (histograms_.size() != other.histograms_.size()) return false;
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const auto& a = histograms_[i];
    const auto& b = other.histograms_[i];
    if (a.name != b.name || a.bounds != b.bounds || a.counts != b.counts ||
        a.sum != b.sum)
      return false;
  }
  return true;
}

void PhaseBreakdown::export_into(Snapshot& snap, const std::string& prefix) const {
  snap.set_gauge(prefix + ".prefill_s", prefill_s);
  snap.set_gauge(prefix + ".decode_s", decode_s);
  snap.set_gauge(prefix + ".idle_s", idle_s);
  snap.set_gauge(prefix + ".compute_s", compute_s);
  snap.set_gauge(prefix + ".memory_s", memory_s);
  snap.set_gauge(prefix + ".comm_s", comm_s);
  snap.set_gauge(prefix + ".host_s", host_s);
  snap.set_counter(prefix + ".iterations", iterations);
  snap.set_counter(prefix + ".prefill_steps", prefill_steps);
  snap.set_counter(prefix + ".decode_steps", decode_steps);
}

}  // namespace llmib::obs
