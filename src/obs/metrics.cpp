#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace llmib::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("obs::Histogram: bounds must be strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramValue Histogram::value(const std::string& name) const {
  HistogramValue h;
  h.name = name;
  h.bounds = bounds_;
  h.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    h.counts[i] = counts_[i].load(std::memory_order_relaxed);
  h.sum = sum_.load(std::memory_order_relaxed);
  return h;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<std::int64_t> default_latency_bounds_ns() {
  // 1us, 4us, 16us, ..., ~17s (x4 steps): 13 explicit buckets + inf.
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 1000; b <= 17'179'869'184LL; b *= 4) bounds.push_back(b);
  return bounds;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.set_counter(name, c->value());
  for (const auto& [name, g] : gauges_) snap.set_gauge(name, g->value());
  for (const auto& [name, h] : histograms_) snap.add_histogram(h->value(name));
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace llmib::obs
