#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llmib::obs {

/// One counter sample: monotonically accumulated integer (deterministic
/// under any thread interleaving — integer addition is commutative).
struct CounterValue {
  std::string name;
  std::int64_t value = 0;
};

/// One gauge sample: a point-in-time double (wall times, rates, ratios).
/// Gauges are NOT part of the determinism contract — they may legitimately
/// differ between serial and pool-backed executions.
struct GaugeValue {
  std::string name;
  double value = 0.0;
};

/// Fixed-bucket histogram with integer observations (e.g. nanoseconds).
/// `bounds` are ascending inclusive upper bounds; the implicit last bucket
/// is +inf, so counts.size() == bounds.size() + 1. Integer counts and sum
/// make aggregation deterministic.
struct HistogramValue {
  std::string name;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::int64_t sum = 0;

  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (auto c : counts) n += c;
    return n;
  }
};

/// The single reporting surface of the observability layer (DESIGN.md,
/// docs/OBSERVABILITY.md). Every metrics producer in the stack —
/// sim::ServingMetrics, sim::SimResult, core::SweepExecutionStats, the
/// worker-pool counters, and the process-wide obs::Registry — exports into
/// this one shape, and every consumer (benches, the dashboard, llmib_cli,
/// CSV artifacts) reads it back out. Entries are kept sorted by name, so
/// two snapshots with the same content serialize identically.
class Snapshot {
 public:
  /// Insert-or-overwrite; keeps the counter list sorted by name.
  void set_counter(const std::string& name, std::int64_t value);
  void set_gauge(const std::string& name, double value);
  void add_histogram(HistogramValue h);

  std::int64_t counter_or(const std::string& name, std::int64_t fallback = 0) const;
  double gauge_or(const std::string& name, double fallback = 0.0) const;
  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;

  const std::vector<CounterValue>& counters() const { return counters_; }
  const std::vector<GaugeValue>& gauges() const { return gauges_; }
  const std::vector<HistogramValue>& histograms() const { return histograms_; }
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Merge `other` in: counters/histogram buckets add, gauges overwrite.
  void merge(const Snapshot& other);

  /// `metric,type,value` rows (RFC-4180, header included). Histograms
  /// flatten to `<name>.le_<bound>` bucket rows plus `.sum`/`.count`.
  std::string to_csv() const;

  /// True when every counter and histogram matches `other` exactly (the
  /// determinism contract; gauges are deliberately excluded).
  bool deterministic_equal(const Snapshot& other) const;

 private:
  std::vector<CounterValue> counters_;   // sorted by name
  std::vector<GaugeValue> gauges_;       // sorted by name
  std::vector<HistogramValue> histograms_;  // sorted by name
};

/// Where the time of a serving/benchmark run went, phase by phase — the
/// iteration-level breakdown LLMServingSim-style simulators use to make a
/// run diagnosable. Filled by the serving loops (simulated clock) and the
/// analytical simulator (per-step roofline terms); rendered by llmib_cli's
/// phase table and exported through Snapshot.
struct PhaseBreakdown {
  double prefill_s = 0.0;  ///< time in prefill steps
  double decode_s = 0.0;   ///< time in decode steps
  double idle_s = 0.0;     ///< event-loop waits with no runnable work

  // Roofline terms accumulated across all steps (overlap-modelled, so the
  // terms need not sum to prefill_s + decode_s).
  double compute_s = 0.0;
  double memory_s = 0.0;
  double comm_s = 0.0;
  double host_s = 0.0;

  std::int64_t iterations = 0;
  std::int64_t prefill_steps = 0;
  std::int64_t decode_steps = 0;

  double active_s() const { return prefill_s + decode_s; }

  /// Export as `<prefix>.prefill_s`, `<prefix>.decode_steps`, ... entries.
  void export_into(Snapshot& snap, const std::string& prefix) const;
};

}  // namespace llmib::obs
