#include "obs/obs.h"

#include <fstream>

namespace llmib::obs {

bool write_snapshot_csv_file(const Snapshot& snap, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << snap.to_csv();
  return static_cast<bool>(f);
}

}  // namespace llmib::obs
