#pragma once

/// Single include for the observability layer: metrics registry + snapshot
/// (always compiled) and span tracing (compile-time removable with
/// -DLLMIB_OBS=OFF, one runtime branch per site when idle).
///
/// Instrumentation idioms (see docs/OBSERVABILITY.md):
///   obs::Span s("engine.step", obs::Cat::kEngine);           // wall clock
///   obs::emit_span("sim.prefill", obs::Cat::kSim, t0, dur);  // sim clock
///   static obs::Counter& c =
///       obs::Registry::global().counter("sched.admitted");   // hot counter
///   c.add(1);

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace llmib::obs {

/// Write `snap.to_csv()` to `path`; returns false on I/O failure.
bool write_snapshot_csv_file(const Snapshot& snap, const std::string& path);

}  // namespace llmib::obs
