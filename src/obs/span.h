#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace llmib::obs {

/// Span/event category — becomes the `cat` field of the Chrome trace.
enum class Cat : std::uint8_t { kEngine, kSim, kSched, kPool, kFault, kBench };

const char* cat_name(Cat c);

/// One completed span (or instant event). `name` must point at static
/// storage (use string literals) — spans never copy the name, which keeps
/// the hot path allocation-free.
struct SpanEvent {
  const char* name = "";
  Cat cat = Cat::kEngine;
  double ts_us = 0.0;   ///< start; wall: since trace epoch, sim: sim-time * 1e6
  double dur_us = 0.0;  ///< 0 for instants
  std::uint32_t tid = 0;    ///< wall: recording thread's track; sim: virtual track
  std::uint16_t depth = 0;  ///< nesting depth at open (wall spans)
  bool simulated = false;   ///< true => simulated clock (exported on its own pid)
  bool instant = false;     ///< Chrome 'i' phase instead of 'X'
  std::int64_t arg = -1;    ///< exported as args:{"v":...} when >= 0
};

namespace detail {
extern std::atomic<bool> g_tracing;
}

/// The one runtime branch every instrumentation site pays when tracing is
/// compiled in but idle (the micro_engine decode bench stays within noise
/// of the uninstrumented path; docs/OBSERVABILITY.md records the numbers).
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

void set_tracing(bool on);

/// Claim a fresh virtual track for simulated-clock spans. Emitters that can
/// run concurrently (sweep points) each claim one so their timelines never
/// interleave on the exported trace.
std::uint32_t claim_sim_track();

/// Bounded collector of span events: one fixed-capacity ring per recording
/// thread (lock per push is per-thread, uncontended), registered with this
/// process-wide collector. On overflow the OLDEST events of that thread are
/// overwritten and counted in dropped().
class TraceBuffer {
 public:
  static TraceBuffer& global();

  /// Default events kept per thread before overwrite.
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Append one event to the calling thread's ring (wall spans) or to the
  /// calling thread's ring with the event's own virtual track (sim spans).
  void record(const SpanEvent& ev);

  /// Copy of every retained event across all threads, sorted by start time.
  std::vector<SpanEvent> events() const;

  /// Events overwritten due to ring overflow, across all threads.
  std::uint64_t dropped() const;
  /// Retained events across all threads.
  std::size_t size() const;

  /// Drop all retained events and reset drop counts.
  void clear();

  /// Change the per-thread ring capacity; implies clear(). Minimum 1.
  void set_capacity_per_thread(std::size_t cap);
  std::size_t capacity_per_thread() const;

 private:
  TraceBuffer() = default;
  struct ThreadRing;
  ThreadRing& ring_for_this_thread();
  void detach_rings_locked();

  mutable std::mutex mu_;  // guards rings_ registration + capacity/generation
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  /// Rings detached by clear(): kept alive because recording threads may
  /// still hold pointers into them until they observe the new generation.
  std::vector<std::unique_ptr<ThreadRing>> retired_;
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<std::uint64_t> generation_{0};
};

#if defined(LLMIB_OBS_DISABLED)

/// Tracing compiled out (-DLLMIB_OBS=OFF): spans are empty objects, emit
/// helpers vanish. The registry/snapshot surface stays available, so all
/// reporting code builds identically.
class Span {
 public:
  explicit Span(const char*, Cat = Cat::kEngine, std::int64_t = -1) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

inline void emit_span(const char*, Cat, double, double, std::uint32_t = 0,
                      std::int64_t = -1) {}
inline void emit_instant(const char*, Cat, double, std::uint32_t = 0,
                         std::int64_t = -1) {}
inline void instant(const char*, Cat, std::int64_t = -1) {}

#else

/// RAII wall-clock span: opens at construction, records one SpanEvent at
/// destruction. Nestable (a thread-local depth counter tracks nesting) and
/// thread-aware (each thread records to its own ring under its own track).
/// When tracing is off at runtime the constructor is a single branch.
class Span {
 public:
  explicit Span(const char* name, Cat cat = Cat::kEngine, std::int64_t arg = -1) {
    if (!tracing_enabled()) return;
    open(name, cat, arg);
  }
  ~Span() {
    if (name_ != nullptr) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name, Cat cat, std::int64_t arg);
  void close();

  const char* name_ = nullptr;
  Cat cat_ = Cat::kEngine;
  std::int64_t arg_ = -1;
  double start_us_ = 0.0;
  std::uint16_t depth_ = 0;
};

/// Simulated-clock span: the serving/analytical simulators know the start
/// and duration of each phase on their own virtual timeline, so they emit
/// completed spans directly. `track` is a virtual thread id on the
/// simulated-process timeline of the exported trace.
void emit_span(const char* name, Cat cat, double start_s, double dur_s,
               std::uint32_t track = 0, std::int64_t arg = -1);

/// Simulated-clock instant event (fault drops, shed decisions, ...).
void emit_instant(const char* name, Cat cat, double t_s, std::uint32_t track = 0,
                  std::int64_t arg = -1);

/// Wall-clock instant event on the calling thread's track.
void instant(const char* name, Cat cat, std::int64_t arg = -1);

#endif  // LLMIB_OBS_DISABLED

}  // namespace llmib::obs
