#include "util/thread_pool.h"

#include <chrono>

#include "obs/obs.h"
#include "util/check.h"

namespace llmib::util {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) : stats_(workers) {
  require(workers >= 1, "ThreadPool: need at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto idle_start = std::chrono::steady_clock::now();
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    stats_[index].wait_s += seconds_since(idle_start);
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();

    const auto busy_start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    try {
      obs::Span span("pool.task", obs::Cat::kPool,
                     static_cast<std::int64_t>(index));
      task();
    } catch (...) {
      error = std::current_exception();
    }
    const double busy = seconds_since(busy_start);

    lock.lock();
    stats_[index].busy_s += busy;
    ++stats_[index].tasks;
    if (error && !first_error_) first_error_ = error;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  require(static_cast<bool>(task), "ThreadPool: empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  ++barriers_;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i)
    submit([&fn, i] { fn(i); });
  wait();
}

void ThreadPool::parallel_for(
    std::size_t total, const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (total == 0) return;
  const std::size_t shards = threads_.size();
  const std::size_t base = total / shards;
  const std::size_t rem = total % shards;
  std::size_t begin = 0;
  std::size_t submitted = 0;
  for (std::size_t s = 0; s < shards && begin < total; ++s) {
    const std::size_t len = base + (s < rem ? 1 : 0);
    if (len == 0) continue;
    const std::size_t end = begin + len;
    submit([&chunk_fn, begin, end] { chunk_fn(begin, end); });
    begin = end;
    ++submitted;
  }
  if (submitted > 0) wait();
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ThreadPool::WorkerStats ThreadPool::total_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerStats total;
  for (const auto& s : stats_) {
    total.tasks += s.tasks;
    total.busy_s += s.busy_s;
    total.wait_s += s.wait_s;
  }
  return total;
}

std::uint64_t ThreadPool::barriers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return barriers_;
}

}  // namespace llmib::util
