#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace llmib::util {

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = bytes;
  std::size_t i = 0;
  while (std::abs(v) >= 1024.0 && i + 1 < suffix.size()) {
    v /= 1024.0;
    ++i;
  }
  return format_fixed(v, 2) + " " + suffix[i];
}

std::string format_flops(double flops_per_sec) {
  static constexpr std::array<const char*, 5> suffix = {"FLOP/s", "KFLOP/s", "MFLOP/s",
                                                        "GFLOP/s", "TFLOP/s"};
  double v = flops_per_sec;
  std::size_t i = 0;
  while (std::abs(v) >= 1000.0 && i + 1 < suffix.size()) {
    v /= 1000.0;
    ++i;
  }
  return format_fixed(v, 2) + " " + suffix[i];
}

std::string format_compact(double value) {
  const double a = std::abs(value);
  if (a >= 1e9) return format_fixed(value / 1e9, 2) + "B";
  if (a >= 1e6) return format_fixed(value / 1e6, 2) + "M";
  if (a >= 1e3) return format_fixed(value / 1e3, 1) + "k";
  if (a >= 100) return format_fixed(value, 0);
  return format_fixed(value, 2);
}

std::string format_duration(double seconds) {
  const double a = std::abs(seconds);
  if (a >= 1.0) return format_fixed(seconds, 2) + " s";
  if (a >= 1e-3) return format_fixed(seconds * 1e3, 2) + " ms";
  if (a >= 1e-6) return format_fixed(seconds * 1e6, 1) + " us";
  return format_fixed(seconds * 1e9, 0) + " ns";
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace llmib::util
