#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace llmib::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width " + std::to_string(fields.size()) +
                                " != header width " + std::to_string(columns_));
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields.emplace_back(buf);
  }
  write_row(fields);
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace llmib::util
