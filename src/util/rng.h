#pragma once

#include <cstdint>
#include <vector>

namespace llmib::util {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the suite (synthetic workloads, random
/// weights in the mini engine, request arrival processes) draws from this
/// generator so that results are exactly reproducible run-to-run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal (Box-Muller, cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Exponential with given rate (lambda). Requires rate > 0.
  double exponential(double rate);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork a decorrelated child generator (stable given call order).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace llmib::util
