#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace llmib::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 so that nearby seeds
  // produce decorrelated streams.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  double u = next_double();
  while (u <= 1e-300) u = next_double();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Rng::categorical: all weights zero");
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace llmib::util
