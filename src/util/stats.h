#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace llmib::util {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Compute all summary statistics in one pass (plus a sort for quantiles).
/// An empty sample yields an all-zero summary.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 if fewer than two points.
double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Throws on empty input or q
/// outside [0,1]. Copies and sorts the sample on every call; when taking
/// several quantiles of one sample, sort once and use quantile_sorted.
double quantile(std::span<const double> xs, double q);

/// quantile() over an ALREADY ascending-sorted sample — no copy, no sort.
/// Same contract otherwise; equal results for equal samples.
double quantile_sorted(std::span<const double> sorted_xs, double q);

/// Geometric mean; throws if any value is <= 0.
double geomean(std::span<const double> xs);

/// Pearson correlation coefficient; throws on size mismatch or < 2 points.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Simple least-squares fit y = a + b*x. Returns {a, b}.
/// Throws on size mismatch or < 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Online accumulator (Welford) for streaming measurements.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance, 0 if < 2 points
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace llmib::util
