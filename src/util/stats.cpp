#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace llmib::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double quantile_sorted(std::span<const double> sorted_xs, double q) {
  if (sorted_xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  const double pos = q * static_cast<double>(sorted_xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geomean: empty sample");
  double log_sum = 0;
  for (double x : xs) {
    if (x <= 0) throw std::invalid_argument("geomean: non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  // One sort serves the extrema and all three quantiles.
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("pearson: need >= 2 points");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) throw std::invalid_argument("pearson: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("linear_fit: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("linear_fit: need >= 2 points");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0, sxx = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx == 0) throw std::invalid_argument("linear_fit: zero x variance");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  return f;
}

void Accumulator::add(double x) {
  sum_ += x;
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace llmib::util
