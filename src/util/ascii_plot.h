#pragma once

#include <string>
#include <vector>

namespace llmib::util {

/// Render a horizontal ASCII bar chart: one row per (label, value), bars
/// scaled to `width` characters against the max value. Values must be
/// non-negative.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& rows,
                      std::size_t width = 50);

/// Render a 2-D heatmap using a density ramp (" .:-=+*#%@"), with row and
/// column labels. `cells[r][c]` must be rectangular.
std::string heatmap(const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels,
                    const std::vector<std::vector<double>>& cells);

/// Render grouped series as a compact line-per-series sparkline table.
std::string spark_table(const std::vector<std::string>& series_labels,
                        const std::vector<std::vector<double>>& series);

}  // namespace llmib::util
