#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace llmib::util {

/// Minimal RFC-4180-ish CSV writer used by the benchmark harness to emit
/// machine-readable result files next to the human-readable tables.
///
/// Fields containing commas, quotes, or newlines are quoted; embedded
/// quotes are doubled. Column count is fixed by the header; writing a row
/// of the wrong width throws.
class CsvWriter {
 public:
  /// Binds to an output stream that must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with 6 significant digits.
  void write_row_numeric(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }
  std::size_t columns() const { return columns_; }

  /// Escape a single field per CSV quoting rules (exposed for tests).
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Parse one CSV line into fields (handles quoting); used by tests and by
/// the dashboard generator when re-reading emitted results.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace llmib::util
