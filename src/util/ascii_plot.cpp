#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace llmib::util {

std::string bar_chart(const std::vector<std::pair<std::string, double>>& rows,
                      std::size_t width) {
  if (rows.empty()) return "";
  double max_v = 0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : rows) {
    if (v < 0) throw std::invalid_argument("bar_chart: negative value");
    max_v = std::max(max_v, v);
    label_w = std::max(label_w, label.size());
  }
  std::string out;
  for (const auto& [label, v] : rows) {
    const auto bar_len =
        max_v > 0 ? static_cast<std::size_t>(std::llround(v / max_v * static_cast<double>(width)))
                  : 0;
    out += pad_right(label, label_w);
    out += " | ";
    out += std::string(bar_len, '#');
    out += ' ';
    out += format_compact(v);
    out += '\n';
  }
  return out;
}

std::string heatmap(const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels,
                    const std::vector<std::vector<double>>& cells) {
  if (cells.size() != row_labels.size())
    throw std::invalid_argument("heatmap: row label/cell count mismatch");
  double max_v = 0;
  for (const auto& row : cells) {
    if (row.size() != col_labels.size())
      throw std::invalid_argument("heatmap: ragged cell matrix");
    for (double v : row) max_v = std::max(max_v, v);
  }
  static const std::string ramp = " .:-=+*#%@";
  constexpr std::size_t cell_w = 9;
  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());

  std::string out = std::string(label_w + 1, ' ');
  for (const auto& c : col_labels) out += pad_left(c, cell_w);
  out += '\n';
  for (std::size_t r = 0; r < cells.size(); ++r) {
    out += pad_right(row_labels[r], label_w + 1);
    for (double v : cells[r]) {
      const auto level = max_v > 0
                             ? std::min(ramp.size() - 1,
                                        static_cast<std::size_t>(v / max_v * (double)(ramp.size() - 1)))
                             : 0;
      std::string cell = std::string(1, ramp[level]) + format_compact(v);
      out += pad_left(cell, cell_w);
    }
    out += '\n';
  }
  return out;
}

std::string spark_table(const std::vector<std::string>& series_labels,
                        const std::vector<std::vector<double>>& series) {
  if (series_labels.size() != series.size())
    throw std::invalid_argument("spark_table: label/series count mismatch");
  static const std::string ramp = "_.-=^*#@";
  double max_v = 0;
  std::size_t label_w = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (double v : series[i]) max_v = std::max(max_v, v);
    label_w = std::max(label_w, series_labels[i].size());
  }
  std::string out;
  for (std::size_t i = 0; i < series.size(); ++i) {
    out += pad_right(series_labels[i], label_w);
    out += " ";
    for (double v : series[i]) {
      const auto level = max_v > 0
                             ? std::min(ramp.size() - 1,
                                        static_cast<std::size_t>(v / max_v * (double)(ramp.size() - 1)))
                             : 0;
      out += ramp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace llmib::util
