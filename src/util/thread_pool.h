#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llmib::util {

/// Persistent fixed-size worker pool with barrier semantics, shared by the
/// sharded engine (one pool per ShardedTransformer lifetime), the batched
/// engine's sequence-parallel stepping, and the benchmark suite's parallel
/// sweep execution.
///
/// Model: the owner thread submit()s tasks and wait()s; wait() is the
/// barrier — it returns once every task submitted so far has finished.
/// run() bundles the common fork-join shape (n index tasks + barrier).
/// The pool is reusable across any number of submit/wait generations; the
/// workers are created once in the constructor and joined in the
/// destructor. Nothing in the hot dispatch path creates threads.
///
/// Exceptions thrown by tasks are captured; the FIRST one is rethrown from
/// the wait() that observes it (later tasks of the generation still run).
/// After the rethrow the pool is clean and reusable.
///
/// Thread-safety: submit/wait/run must be called from one owner thread at
/// a time; stats accessors may be called from any thread.
class ThreadPool {
 public:
  /// Per-worker counters, maintained under the pool lock (cheap relative
  /// to task bodies) so readers never race writers.
  struct WorkerStats {
    std::uint64_t tasks = 0;  ///< tasks this worker executed
    double busy_s = 0.0;      ///< wall time spent inside task bodies
    double wait_s = 0.0;      ///< wall time spent blocked waiting for work
  };

  /// Spawns `workers` (>= 1) threads immediately.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueue one task for any worker.
  void submit(std::function<void()> task);

  /// Barrier: block until every submitted task has completed. Rethrows the
  /// first captured task exception, if any.
  void wait();

  /// Fork-join: submit fn(0) .. fn(n-1) and wait(). `fn` must tolerate
  /// concurrent invocation on distinct indices.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked fork-join over [0, total): splits into size() contiguous
  /// chunks and calls chunk_fn(begin, end) for each non-empty chunk.
  void parallel_for(std::size_t total,
                    const std::function<void(std::size_t, std::size_t)>& chunk_fn);

  /// Snapshot of every worker's counters.
  std::vector<WorkerStats> worker_stats() const;
  /// Sum over workers.
  WorkerStats total_stats() const;
  /// Completed wait() barriers.
  std::uint64_t barriers() const;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: "there is work (or stop)"
  std::condition_variable done_cv_;   // owner: "everything drained"
  std::deque<std::function<void()>> queue_;
  std::vector<WorkerStats> stats_;    // one slot per worker
  std::exception_ptr first_error_;
  std::size_t pending_ = 0;           // queued + currently running tasks
  std::uint64_t barriers_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;  // declared last: joins before members die
};

}  // namespace llmib::util
