#pragma once

#include <stdexcept>
#include <string>

namespace llmib::util {

/// Thrown when a public-API precondition is violated. Using a dedicated
/// type lets tests assert on contract enforcement distinctly from logic
/// errors that surface as std::logic_error.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Check a precondition on a public entry point; throws ContractViolation.
/// The const char* overload exists so literal messages cost nothing until
/// the condition actually fails — the std::string overload materializes its
/// message (one heap allocation) even on the happy path, which is
/// measurable in per-token loops like KvStore::append (the no-allocation
/// steady-state test pins this).
inline void require(bool condition, const char* message) {
  if (!condition) throw ContractViolation(message);
}
inline void require(bool condition, const std::string& message) {
  if (!condition) throw ContractViolation(message);
}

}  // namespace llmib::util
