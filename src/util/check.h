#pragma once

#include <stdexcept>
#include <string>

namespace llmib::util {

/// Thrown when a public-API precondition is violated. Using a dedicated
/// type lets tests assert on contract enforcement distinctly from logic
/// errors that surface as std::logic_error.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Check a precondition on a public entry point; throws ContractViolation.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw ContractViolation(message);
}

}  // namespace llmib::util
