#pragma once

#include <cstdint>
#include <string>

namespace llmib::util {

// Byte-size constants used throughout the suite.
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kPeta = 1e15;

/// "1.50 GiB", "512.00 MiB", ... (binary prefixes, 2 decimals).
std::string format_bytes(double bytes);

/// "1.23 TFLOP/s", "456.00 GFLOP/s" (decimal prefixes).
std::string format_flops(double flops_per_sec);

/// "12.3k", "4.56M" style short numbers for chart labels.
std::string format_compact(double value);

/// Fixed-precision numeric formatting ("%.2f" etc.) without iostream fuss.
std::string format_fixed(double value, int decimals);

/// "123.4 ms" / "1.23 s" / "456 us" picking a sensible unit from seconds.
std::string format_duration(double seconds);

/// Left/right pad a string with spaces to the given width (no truncation).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace llmib::util
