#include "fault/fault_model.h"

#include "util/check.h"

namespace llmib::fault {

using util::require;

namespace {

// Decorrelate the two event streams from one profile seed.
constexpr std::uint64_t kDeviceStream = 0x6465766963655f66ULL;   // "device_f"
constexpr std::uint64_t kThrottleStream = 0x7468726f74746c65ULL;  // "throttle"

}  // namespace

FaultClock::FaultClock(const FaultProfile& profile)
    : p_(profile),
      device_rng_(profile.seed ^ kDeviceStream),
      throttle_rng_(profile.seed ^ kThrottleStream) {
  require(p_.device_mtbf_s >= 0, "FaultProfile: negative device MTBF");
  require(p_.device_restart_s >= 0, "FaultProfile: negative restart delay");
  require(p_.throttle_mtbf_s >= 0, "FaultProfile: negative throttle MTBF");
  require(p_.throttle_duration_s >= 0, "FaultProfile: negative throttle duration");
  require(p_.throttle_slowdown >= 1.0,
          "FaultProfile: throttle_slowdown must be >= 1");
  require(p_.active_until_s >= 0, "FaultProfile: negative fault horizon");
  next_failure_s_ =
      p_.device_mtbf_s > 0 ? device_rng_.exponential(1.0 / p_.device_mtbf_s) : -1.0;
  next_throttle_start_s_ =
      p_.throttle_mtbf_s > 0 ? throttle_rng_.exponential(1.0 / p_.throttle_mtbf_s)
                             : -1.0;
}

bool FaultClock::suppressed(double start_s) const {
  return p_.active_until_s > 0 && start_s > p_.active_until_s;
}

double FaultClock::take_device_failure(double now) {
  if (next_failure_s_ < 0 || suppressed(next_failure_s_)) return -1.0;
  if (next_failure_s_ > now) return -1.0;
  const double fired = next_failure_s_;
  ++device_failures_;
  last_disruption_end_ =
      std::max(last_disruption_end_, fired + p_.device_restart_s);
  next_failure_s_ = fired + device_rng_.exponential(1.0 / p_.device_mtbf_s);
  return fired;
}

double FaultClock::slowdown_at(double now) {
  if (next_throttle_start_s_ < 0) return throttle_end_s_ > now
                                             ? p_.throttle_slowdown
                                             : 1.0;
  // Advance past episodes that already ended before this query; they were
  // never observed by a step and have no effect.
  while (next_throttle_start_s_ >= 0 && !suppressed(next_throttle_start_s_) &&
         next_throttle_start_s_ + p_.throttle_duration_s <= now) {
    next_throttle_start_s_ +=
        p_.throttle_duration_s + throttle_rng_.exponential(1.0 / p_.throttle_mtbf_s);
  }
  if (next_throttle_start_s_ >= 0 && !suppressed(next_throttle_start_s_) &&
      next_throttle_start_s_ <= now) {
    // Entering a live episode: record it and schedule the next one.
    ++throttle_episodes_;
    throttle_end_s_ = next_throttle_start_s_ + p_.throttle_duration_s;
    last_disruption_end_ = std::max(last_disruption_end_, throttle_end_s_);
    next_throttle_start_s_ =
        throttle_end_s_ + throttle_rng_.exponential(1.0 / p_.throttle_mtbf_s);
  }
  return throttle_end_s_ > now ? p_.throttle_slowdown : 1.0;
}

}  // namespace llmib::fault
