#include "fault/shard_fault.h"

#include <string>

#include "util/check.h"

namespace llmib::fault {

using util::require;

namespace {

// splitmix64 — the stateless hash behind the (seed, shard, step) schedule.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardFault::ShardFault(std::size_t shard, std::size_t step)
    : std::runtime_error("injected shard fault: shard " + std::to_string(shard) +
                         " at step " + std::to_string(step)),
      shard_(shard),
      step_(step) {}

ShardFaultInjector::ShardFaultInjector(Config cfg) : cfg_(cfg) {
  require(cfg.fault_probability >= 0 && cfg.fault_probability <= 1.0,
          "ShardFaultInjector: fault_probability must be in [0, 1]");
  require(cfg.transient_failures >= 1,
          "ShardFaultInjector: transient_failures must be >= 1");
}

bool ShardFaultInjector::scheduled(std::size_t shard, std::size_t step) const {
  if (cfg_.fault_probability <= 0) return false;
  if (cfg_.fault_probability >= 1.0) return true;
  const std::uint64_t h =
      mix(cfg_.seed ^ mix(static_cast<std::uint64_t>(step) * 0x10001ULL +
                          static_cast<std::uint64_t>(shard)));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < cfg_.fault_probability;
}

void ShardFaultInjector::check(std::size_t shard, std::size_t step) {
  if (!scheduled(shard, step)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int& count = thrown_[{step, shard}];
    if (count >= cfg_.transient_failures) return;  // healed
    ++count;
    ++injected_;
  }
  throw ShardFault(shard, step);
}

engine::ShardedTransformer::FaultHook ShardFaultInjector::hook() {
  return [this](std::size_t shard, std::size_t step) { check(shard, step); };
}

std::int64_t ShardFaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

std::vector<float> forward_with_step_retry(engine::ShardedTransformer& model,
                                           engine::TokenId token, int max_attempts,
                                           StepRetryStats* stats) {
  require(max_attempts >= 1, "forward_with_step_retry: need at least one attempt");
  for (int attempt = 1;; ++attempt) {
    try {
      return model.forward(token);
    } catch (const ShardFault&) {
      if (attempt >= max_attempts) throw;
      if (stats) ++stats->retries;
    }
  }
}

}  // namespace llmib::fault
