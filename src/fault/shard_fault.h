#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "engine/parallel_exec.h"

namespace llmib::fault {

/// A transient shard failure injected into the real engine's ThreadPool
/// path. Carries the (shard, step) coordinates so retry logic and tests can
/// see exactly what failed.
class ShardFault : public std::runtime_error {
 public:
  ShardFault(std::size_t shard, std::size_t step);
  std::size_t shard() const { return shard_; }
  std::size_t step() const { return step_; }

 private:
  std::size_t shard_;
  std::size_t step_;
};

/// Seeded, deterministic per-step shard-failure injector for
/// engine::ShardedTransformer. The fault schedule is a pure function of
/// (seed, shard, step) — no cross-thread ordering dependence — and each
/// scheduled fault is TRANSIENT: it throws for `transient_failures`
/// attempts of that step, then heals, modeling a device that recovers
/// after a retry or two. Thread-safe: the hook runs concurrently on every
/// pool worker.
class ShardFaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 2024;
    double fault_probability = 0.0;  ///< per (step, shard) fault chance
    int transient_failures = 1;      ///< throws per faulty (step, shard) before healing
  };

  explicit ShardFaultInjector(Config cfg);

  /// The hook to install via ShardedTransformer::set_fault_hook. Binds
  /// `this`; the injector must outlive the transformer's use of it.
  engine::ShardedTransformer::FaultHook hook();

  /// Whether the schedule faults (shard, step) — deterministic, stateless.
  bool scheduled(std::size_t shard, std::size_t step) const;

  /// Total exceptions thrown so far.
  std::int64_t injected() const;

 private:
  void check(std::size_t shard, std::size_t step);

  Config cfg_;
  mutable std::mutex mu_;
  std::map<std::pair<std::size_t, std::size_t>, int> thrown_;  ///< (step, shard) -> count
  std::int64_t injected_ = 0;
};

/// Statistics of a retried forward pass.
struct StepRetryStats {
  std::int64_t retries = 0;  ///< extra attempts consumed (0 => clean step)
};

/// Run one ShardedTransformer step with bounded retry: a ShardFault aborts
/// the attempt (the transformer guarantees no state was mutated) and the
/// step is re-issued, up to `max_attempts` total attempts; the last
/// failure is rethrown. Non-fault exceptions propagate immediately.
std::vector<float> forward_with_step_retry(engine::ShardedTransformer& model,
                                           engine::TokenId token, int max_attempts,
                                           StepRetryStats* stats = nullptr);

}  // namespace llmib::fault
