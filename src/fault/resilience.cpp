#include "fault/resilience.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace llmib::fault {

using util::require;

double RetryPolicy::backoff_s(int attempt, std::uint64_t stream_seed,
                              std::uint64_t request_id) const {
  // One single-draw stream per (request, attempt). Rng's splitmix64 seeding
  // decorrelates adjacent ids and attempts, so consecutive retries of the
  // same request still see independent jitter.
  util::Rng rng(stream_seed ^ (0x9e3779b97f4a7c15ULL * (request_id + 1) +
                               static_cast<std::uint64_t>(attempt)));
  return backoff_s(attempt, rng);
}

double RetryPolicy::backoff_s(int attempt, util::Rng& rng) const {
  require(attempt >= 1, "RetryPolicy: attempts are 1-based");
  require(backoff_base_s >= 0 && backoff_multiplier >= 1.0,
          "RetryPolicy: malformed backoff parameters");
  require(jitter_frac >= 0 && jitter_frac <= 1.0,
          "RetryPolicy: jitter_frac must be in [0, 1]");
  double delay =
      backoff_base_s * std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  if (jitter_frac > 0) delay *= 1.0 + jitter_frac * (2.0 * rng.next_double() - 1.0);
  return delay;
}

DegradationController::DegradationController(const DegradationConfig& cfg)
    : cfg_(cfg) {
  require(cfg.window_s >= 0, "DegradationConfig: negative pressure window");
  require(cfg.batch_shrink > 0 && cfg.batch_shrink <= 1.0,
          "DegradationConfig: batch_shrink must be in (0, 1]");
  require(cfg.min_batch >= 1, "DegradationConfig: min_batch must be >= 1");
}

void DegradationController::on_fault(double now) {
  if (!cfg_.enabled) return;
  if (now >= pressure_until_) ++activations_;
  pressure_until_ = std::max(pressure_until_, now + cfg_.window_s);
}

bool DegradationController::degraded_at(double now) const {
  return cfg_.enabled && now < pressure_until_;
}

std::int64_t DegradationController::max_batch(std::int64_t base, double now) const {
  if (!degraded_at(now)) return base;
  const auto shrunk = static_cast<std::int64_t>(
      std::floor(static_cast<double>(base) * cfg_.batch_shrink));
  return std::clamp(std::max(shrunk, cfg_.min_batch), std::int64_t{1}, base);
}

}  // namespace llmib::fault
