#pragma once

#include <cstdint>

#include "util/rng.h"

namespace llmib::fault {

/// Salt decorrelating retry-jitter streams from the fault timeline that
/// shares their seed ("backoffs").
inline constexpr std::uint64_t kBackoffStream = 0x6261636b6f666673ULL;

/// Bounded retry with exponential backoff (+ optional jitter) for requests
/// killed by a device failure. `max_retries == 0` (the default) means a
/// fault-killed request fails permanently — the no-policy baseline.
struct RetryPolicy {
  int max_retries = 0;
  double backoff_base_s = 0.05;     ///< delay before the first retry
  double backoff_multiplier = 2.0;  ///< growth per attempt
  double jitter_frac = 0.0;         ///< +/- uniform fraction of the delay

  /// Backoff before retry attempt `attempt` (1-based). Draws from `rng`
  /// only when jitter is configured, so jitter-free policies consume no
  /// randomness.
  double backoff_s(int attempt, util::Rng& rng) const;

  /// Backoff whose jitter draw is a pure function of (stream_seed,
  /// request_id, attempt) — each request owns its jitter stream, so the
  /// delay is identical under ANY interleaving of retries across requests,
  /// routers, or cluster replicas. A shared-generator draw would make the
  /// delay depend on which victim happened to be processed first.
  double backoff_s(int attempt, std::uint64_t stream_seed,
                   std::uint64_t request_id) const;
};

/// Queue-depth / deadline-aware admission control: shed arrivals that
/// cannot plausibly meet their latency target instead of letting the queue
/// saturate the device.
struct AdmissionControl {
  bool enabled = false;
  /// Shed when this many requests are already waiting (0 => unbounded).
  std::int64_t max_queue_depth = 0;
  /// Shed when the predicted queueing delay exceeds this target. 0 picks
  /// the workload's TTFT SLO (or deadline) automatically; < 0 disables the
  /// predictive check.
  double target_ttft_s = 0.0;
};

/// Graceful degradation under sustained fault pressure: while faults are
/// firing, shrink the admission batch (and optionally run with a quantized
/// FP8 KV cache, trading fidelity for memory traffic) so the survivor
/// device drains its backlog; restore full service once the pressure
/// window expires.
struct DegradationConfig {
  bool enabled = false;
  double window_s = 10.0;     ///< pressure persists this long after a fault
  double batch_shrink = 0.5;  ///< degraded max_batch = base * batch_shrink
  std::int64_t min_batch = 1;
  bool quantize_kv = false;   ///< degraded steps use an FP8 KV cache
};

/// Tracks fault pressure over time and yields the effective admission
/// batch. An activation is a transition from healthy to degraded.
class DegradationController {
 public:
  explicit DegradationController(const DegradationConfig& cfg);

  /// Record a fault (device failure or throttle episode) observed at `now`.
  void on_fault(double now);

  bool degraded_at(double now) const;
  std::int64_t max_batch(std::int64_t base, double now) const;
  std::int64_t activations() const { return activations_; }

 private:
  DegradationConfig cfg_;
  double pressure_until_ = -1.0e300;
  std::int64_t activations_ = 0;
};

/// Everything the serving simulator's resilience layer can be asked to do.
/// Default-constructed: no deadline, no retry, no shedding, no
/// degradation — the loop behaves exactly as the policy-free simulator.
struct ResiliencePolicy {
  /// Per-request end-to-end deadline measured from arrival; a request
  /// still unfinished past it is cancelled and its KV freed (0 => none).
  double deadline_s = 0.0;
  RetryPolicy retry;
  AdmissionControl admission;
  DegradationConfig degradation;

  bool any() const {
    return deadline_s > 0 || retry.max_retries > 0 || admission.enabled ||
           degradation.enabled;
  }
};

}  // namespace llmib::fault
