#pragma once

#include <cstdint>

#include "util/rng.h"

namespace llmib::fault {

/// Stochastic fault environment for a serving run, in the spirit of the
/// hardware-evaluation literature that treats degradation (clock/bandwidth
/// derating, transient failures) as a first-class device property. Two
/// independent Poisson processes:
///
///  - transient DEVICE FAILURES (MTBF-driven): the accelerator drops, every
///    live sequence loses its KV cache, and serving pauses for a restart
///    delay before prefill-recomputing survivors;
///  - THROTTLE episodes (thermal derating / straggler shards): for the
///    episode's duration every iteration runs `throttle_slowdown` times
///    slower.
///
/// A default-constructed profile is inert: `enabled()` is false and the
/// serving simulator's fault machinery is bypassed entirely, reproducing
/// the fault-free metrics bit for bit.
struct FaultProfile {
  std::uint64_t seed = 42;        ///< fault timeline seed (decoupled from workload)

  double device_mtbf_s = 0.0;     ///< mean time between device failures; 0 => none
  double device_restart_s = 2.0;  ///< downtime per failure before recovery starts

  double throttle_mtbf_s = 0.0;   ///< mean time between throttle episodes; 0 => none
  double throttle_duration_s = 5.0;
  double throttle_slowdown = 2.0; ///< step-time multiplier while throttled

  /// Faults whose start lies beyond this horizon are suppressed (0 => no
  /// horizon). Lets benchmarks build "storm then calm" scenarios and check
  /// post-episode recovery.
  double active_until_s = 0.0;

  bool enabled() const { return device_mtbf_s > 0 || throttle_mtbf_s > 0; }
};

/// Lazy, deterministic realization of a FaultProfile: the serving loop asks
/// questions in non-decreasing simulation time and the clock draws the two
/// event streams on demand from decorrelated seeded generators. Same
/// profile + same query sequence => identical fault timeline.
class FaultClock {
 public:
  explicit FaultClock(const FaultProfile& profile);

  /// Earliest unconsumed device failure at or before `now`, consumed one
  /// per call; negative when none is due. The caller applies the restart
  /// delay itself (it owns the simulation clock).
  double take_device_failure(double now);

  /// Step-time multiplier for an iteration starting at `now` (>= 1).
  /// Advances the throttle-episode state machine; episodes that fall
  /// entirely between queries are skipped without effect.
  double slowdown_at(double now);

  std::int64_t device_failures() const { return device_failures_; }
  std::int64_t throttle_episodes() const { return throttle_episodes_; }

  /// End time of the latest disruption consumed so far (failure restart or
  /// throttle episode); very negative when none occurred. Used for the
  /// post-fault availability metric.
  double last_disruption_end_s() const { return last_disruption_end_; }

 private:
  bool suppressed(double start_s) const;

  FaultProfile p_;
  util::Rng device_rng_;
  util::Rng throttle_rng_;
  double next_failure_s_;        ///< < 0 when the stream is exhausted
  double next_throttle_start_s_; ///< < 0 when the stream is exhausted
  double throttle_end_s_ = -1.0;
  std::int64_t device_failures_ = 0;
  std::int64_t throttle_episodes_ = 0;
  double last_disruption_end_ = -1.0e300;
};

}  // namespace llmib::fault
