#include "report/dashboard.h"

#include <cstdio>

namespace llmib::report {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void DashboardBuilder::add(const DashboardRecord& r) { records_.push_back(r); }

std::string DashboardBuilder::render_json() const {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& r = records_[i];
    if (i) out += ",";
    out += "{\"model\":\"" + json_escape(r.model) + "\",\"hw\":\"" +
           json_escape(r.accelerator) + "\",\"fw\":\"" + json_escape(r.framework) +
           "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"batch\":%ld,\"in\":%ld,\"out\":%ld,\"tput\":%.2f,"
                  "\"ttft\":%.5f,\"itl\":%.6f,\"power\":%.1f,"
                  "\"avail\":%.4f,\"retries\":%ld,\"shed\":%ld,",
                  r.batch, r.input_tokens, r.output_tokens, r.throughput_tps,
                  r.ttft_s, r.itl_s, r.power_w, r.availability, r.retries,
                  r.shed);
    out += buf;
    out += "\"status\":\"" + json_escape(r.status) + "\"}";
  }
  out += "]";
  return out;
}

std::string DashboardBuilder::render_html(const std::string& title) const {
  std::string html;
  html += "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>";
  html += json_escape(title);
  html += R"(</title><style>
body{font-family:system-ui,sans-serif;margin:2em;background:#fafafa;color:#222}
h1{font-size:1.4em} .controls{margin:1em 0} select{margin-right:1em;padding:2px}
table{border-collapse:collapse;margin-top:1em} td,th{border:1px solid #ccc;padding:4px 8px;font-size:0.9em;text-align:right}
th{background:#eee} td:first-child,td:nth-child(2),td:nth-child(3){text-align:left}
.bar{background:#4477aa;height:12px;display:inline-block;vertical-align:middle}
</style></head><body><h1>)";
  html += json_escape(title);
  html += R"(</h1>
<div class="controls">
  Model <select id="fModel"></select>
  Accelerator <select id="fHw"></select>
  Framework <select id="fFw"></select>
  Metric <select id="fMetric">
    <option value="tput">throughput (tok/s)</option>
    <option value="ttft">TTFT (s)</option>
    <option value="itl">ITL (s)</option>
    <option value="power">power (W)</option>
    <option value="avail">availability</option>
    <option value="retries">retries</option>
    <option value="shed">shed requests</option>
  </select>
</div>
<div id="out"></div>
<script>
const DATA = )";
  html += render_json();
  html += R"(;
function opts(sel, values){ sel.innerHTML = '<option value="">(all)</option>' +
  values.map(v=>`<option>${v}</option>`).join(''); }
const uniq = k => [...new Set(DATA.map(r=>r[k]))].sort();
opts(fModel, uniq('model')); opts(fHw, uniq('hw')); opts(fFw, uniq('fw'));
function render(){
  const m=fModel.value,h=fHw.value,f=fFw.value,metric=fMetric.value;
  const rows=DATA.filter(r=>(!m||r.model===m)&&(!h||r.hw===h)&&(!f||r.fw===f));
  const max=Math.max(...rows.map(r=>r[metric]),1e-12);
  let t='<table><tr><th>model</th><th>hw</th><th>fw</th><th>batch</th><th>in</th><th>out</th><th>'+metric+'</th><th></th></tr>';
  for(const r of rows){
    const w=Math.round(200*r[metric]/max);
    t+=`<tr><td>${r.model}</td><td>${r.hw}</td><td>${r.fw}</td><td>${r.batch}</td><td>${r.in}</td><td>${r.out}</td>`+
       `<td>${r.status==='ok'?r[metric].toPrecision(4):r.status}</td><td><span class="bar" style="width:${w}px"></span></td></tr>`;
  }
  out.innerHTML=t+'</table>';
}
for(const el of [fModel,fHw,fFw,fMetric]) el.addEventListener('change',render);
render();
</script></body></html>)";
  return html;
}

}  // namespace llmib::report
