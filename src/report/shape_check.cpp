#include "report/shape_check.h"

#include <cmath>

#include "util/check.h"
#include "util/units.h"

namespace llmib::report {

ShapeReport::ShapeReport(std::string experiment_id) : id_(std::move(experiment_id)) {
  util::require(!id_.empty(), "ShapeReport: needs an experiment id");
}

void ShapeReport::check_ratio(const std::string& what, double measured,
                              double expected, double tolerance_frac) {
  util::require(expected > 0, "check_ratio: expected must be positive");
  util::require(tolerance_frac > 0, "check_ratio: tolerance must be positive");
  ++total_;
  const bool ok = measured >= expected * (1.0 - tolerance_frac) &&
                  measured <= expected * (1.0 + tolerance_frac);
  if (!ok) ++failed_;
  lines_.push_back(std::string(ok ? "  [ok]   " : "  [DEV]  ") + what + ": measured " +
                   util::format_fixed(measured, 2) + " vs paper " +
                   util::format_fixed(expected, 2) + " (tol +/-" +
                   util::format_fixed(tolerance_frac * 100, 0) + "%)");
}

void ShapeReport::check_claim(const std::string& what, bool holds) {
  ++total_;
  if (!holds) ++failed_;
  lines_.push_back(std::string(holds ? "  [ok]   " : "  [DEV]  ") + what);
}

void ShapeReport::note(const std::string& what, double measured) {
  lines_.push_back("  [note] " + what + " = " + util::format_fixed(measured, 2));
}

bool ShapeReport::all_passed() const { return failed_ == 0; }

std::string ShapeReport::summary() const {
  std::string out = "-- shape checks for " + id_ + " --\n";
  for (const auto& l : lines_) out += l + "\n";
  out += failed_ == 0 ? "SHAPE OK (" + std::to_string(total_) + " checks)\n"
                      : "SHAPE DEVIATIONS: " + std::to_string(failed_) + "/" +
                            std::to_string(total_) + " (documented in EXPERIMENTS.md)\n";
  return out;
}

}  // namespace llmib::report
