#pragma once

#include <string>
#include <vector>

namespace llmib::report {

/// Records paper-vs-measured comparisons for one experiment. Every bench
/// binary ends by printing a ShapeReport: each entry compares a measured
/// relation (a ratio, an ordering) against the paper's reported value with
/// a tolerance band, exactly as DESIGN.md §4 prescribes. A deviation is
/// reported, not hidden — EXPERIMENTS.md aggregates these.
class ShapeReport {
 public:
  explicit ShapeReport(std::string experiment_id);

  /// measured within [expected*(1-tol), expected*(1+tol)]?
  void check_ratio(const std::string& what, double measured, double expected,
                   double tolerance_frac = 0.40);

  /// A qualitative claim (an ordering, a crossover, an OOM occurrence).
  void check_claim(const std::string& what, bool holds);

  /// Record a measured value with no pass/fail (context for the reader).
  void note(const std::string& what, double measured);

  bool all_passed() const;
  std::size_t checks() const { return total_; }
  std::size_t failures() const { return failed_; }

  /// Multi-line summary ending in "SHAPE OK"/"SHAPE DEVIATIONS: n".
  std::string summary() const;

 private:
  std::string id_;
  std::vector<std::string> lines_;
  std::size_t total_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace llmib::report
