#pragma once

#include <span>

#include "report/table.h"
#include "util/thread_pool.h"

namespace llmib::report {

/// Render worker-pool counters as a table (one row per worker plus a
/// total row): tasks executed, busy/wait wall time, and utilization
/// busy / (busy + wait). This is how the engine and the sweep runner make
/// their parallel-execution behavior observable in benches and dashboards.
Table pool_stats_table(std::span<const util::ThreadPool::WorkerStats> stats);

/// One-line summary ("N workers, T tasks, U% utilization") for embedding
/// in dashboards and bench epilogues.
std::string pool_stats_summary(std::span<const util::ThreadPool::WorkerStats> stats);

}  // namespace llmib::report
