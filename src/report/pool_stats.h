#pragma once

#include <span>

#include "obs/snapshot.h"
#include "report/table.h"
#include "util/thread_pool.h"

namespace llmib::report {

/// Export worker-pool counters into the uniform reporting surface:
/// `pool.workers`, per-worker `pool.worker<i>.tasks` counters and
/// `pool.worker<i>.busy_s`/`.wait_s` gauges, plus `pool.tasks`,
/// `pool.busy_s`, `pool.wait_s` and `pool.utilization` totals.
obs::Snapshot snapshot_of(std::span<const util::ThreadPool::WorkerStats> stats);

/// Render worker-pool counters as a table (one row per worker plus a
/// total row): tasks executed, busy/wait time in seconds, and utilization
/// busy / (busy + wait). Built on snapshot_of() — the table is a view of
/// the same obs::Snapshot the dashboards export.
Table pool_stats_table(std::span<const util::ThreadPool::WorkerStats> stats);

/// One-line summary ("N workers, T tasks, U% utilization") for embedding
/// in dashboards and bench epilogues.
std::string pool_stats_summary(std::span<const util::ThreadPool::WorkerStats> stats);

}  // namespace llmib::report
