#include "report/pool_stats.h"

#include "util/units.h"

namespace llmib::report {

namespace {
util::ThreadPool::WorkerStats sum(
    std::span<const util::ThreadPool::WorkerStats> stats) {
  util::ThreadPool::WorkerStats total;
  for (const auto& s : stats) {
    total.tasks += s.tasks;
    total.busy_s += s.busy_s;
    total.wait_s += s.wait_s;
  }
  return total;
}

double utilization(const util::ThreadPool::WorkerStats& s) {
  const double denom = s.busy_s + s.wait_s;
  return denom > 0 ? s.busy_s / denom : 0.0;
}
}  // namespace

Table pool_stats_table(std::span<const util::ThreadPool::WorkerStats> stats) {
  Table t({"worker", "tasks", "busy ms", "wait ms", "util %"});
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    t.add_row({std::to_string(i), std::to_string(s.tasks),
               util::format_fixed(s.busy_s * 1e3, 2),
               util::format_fixed(s.wait_s * 1e3, 2),
               util::format_fixed(utilization(s) * 100.0, 1)});
  }
  const auto total = sum(stats);
  t.add_row({"total", std::to_string(total.tasks),
             util::format_fixed(total.busy_s * 1e3, 2),
             util::format_fixed(total.wait_s * 1e3, 2),
             util::format_fixed(utilization(total) * 100.0, 1)});
  return t;
}

std::string pool_stats_summary(
    std::span<const util::ThreadPool::WorkerStats> stats) {
  const auto total = sum(stats);
  return std::to_string(stats.size()) + " workers, " +
         std::to_string(total.tasks) + " tasks, " +
         util::format_fixed(utilization(total) * 100.0, 1) + "% utilization";
}

}  // namespace llmib::report
