#include "report/pool_stats.h"

#include "util/units.h"

namespace llmib::report {

namespace {
double utilization(double busy_s, double wait_s) {
  const double denom = busy_s + wait_s;
  return denom > 0 ? busy_s / denom : 0.0;
}
}  // namespace

obs::Snapshot snapshot_of(std::span<const util::ThreadPool::WorkerStats> stats) {
  obs::Snapshot snap;
  snap.set_counter("pool.workers", static_cast<std::int64_t>(stats.size()));
  std::int64_t total_tasks = 0;
  double total_busy = 0.0, total_wait = 0.0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    const std::string prefix = "pool.worker" + std::to_string(i);
    snap.set_counter(prefix + ".tasks", static_cast<std::int64_t>(s.tasks));
    snap.set_gauge(prefix + ".busy_s", s.busy_s);
    snap.set_gauge(prefix + ".wait_s", s.wait_s);
    total_tasks += static_cast<std::int64_t>(s.tasks);
    total_busy += s.busy_s;
    total_wait += s.wait_s;
  }
  snap.set_counter("pool.tasks", total_tasks);
  snap.set_gauge("pool.busy_s", total_busy);
  snap.set_gauge("pool.wait_s", total_wait);
  snap.set_gauge("pool.utilization", utilization(total_busy, total_wait));
  return snap;
}

Table pool_stats_table(std::span<const util::ThreadPool::WorkerStats> stats) {
  const obs::Snapshot snap = snapshot_of(stats);
  const auto workers = snap.counter_or("pool.workers");
  Table t({"worker", "tasks", "busy_s", "wait_s", "util_pct"});
  for (std::int64_t i = 0; i < workers; ++i) {
    const std::string prefix = "pool.worker" + std::to_string(i);
    const double busy = snap.gauge_or(prefix + ".busy_s");
    const double wait = snap.gauge_or(prefix + ".wait_s");
    t.add_row({std::to_string(i), std::to_string(snap.counter_or(prefix + ".tasks")),
               util::format_fixed(busy, 4), util::format_fixed(wait, 4),
               util::format_fixed(utilization(busy, wait) * 100.0, 1)});
  }
  t.add_row({"total", std::to_string(snap.counter_or("pool.tasks")),
             util::format_fixed(snap.gauge_or("pool.busy_s"), 4),
             util::format_fixed(snap.gauge_or("pool.wait_s"), 4),
             util::format_fixed(snap.gauge_or("pool.utilization") * 100.0, 1)});
  return t;
}

std::string pool_stats_summary(
    std::span<const util::ThreadPool::WorkerStats> stats) {
  const obs::Snapshot snap = snapshot_of(stats);
  return std::to_string(snap.counter_or("pool.workers")) + " workers, " +
         std::to_string(snap.counter_or("pool.tasks")) + " tasks, " +
         util::format_fixed(snap.gauge_or("pool.utilization") * 100.0, 1) +
         "% utilization";
}

}  // namespace llmib::report
