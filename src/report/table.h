#pragma once

#include <string>
#include <vector>

namespace llmib::report {

/// Column-aligned text/markdown table builder used by every bench binary to
/// print the paper's tables and figure data series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);  ///< throws on width mismatch

  /// Convenience: first cell is a label, the rest are numbers formatted
  /// with `decimals` digits.
  void add_numeric_row(const std::string& label, const std::vector<double>& values,
                       int decimals = 1);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// GitHub-flavored markdown.
  std::string to_markdown() const;
  /// Space-aligned plain text (what the bench binaries print).
  std::string to_text() const;
  /// RFC-4180 CSV (machine-readable result artifact).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace llmib::report
