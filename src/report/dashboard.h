#pragma once

#include <string>
#include <vector>

namespace llmib::report {

/// One record in the dashboard's result set (flattened benchmark point).
struct DashboardRecord {
  std::string model;
  std::string accelerator;
  std::string framework;
  long batch = 0;
  long input_tokens = 0;
  long output_tokens = 0;
  double throughput_tps = 0.0;
  double ttft_s = 0.0;
  double itl_s = 0.0;
  double power_w = 0.0;
  // Resilience columns (serving-under-faults runs; defaults mean "no faults").
  double availability = 1.0;
  long retries = 0;
  long shed = 0;
  std::string status = "ok";
};

/// Generates the standalone interactive HTML dashboard the paper ships
/// alongside its results (contribution #2): records are embedded as JSON,
/// with client-side filtering by model/accelerator/framework and a bar
/// chart of the selected metric. No external assets — one self-contained
/// file.
class DashboardBuilder {
 public:
  void add(const DashboardRecord& record);
  std::size_t size() const { return records_.size(); }

  /// Render the self-contained HTML page.
  std::string render_html(const std::string& title) const;

  /// The embedded JSON (exposed for tests).
  std::string render_json() const;

 private:
  std::vector<DashboardRecord> records_;
};

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace llmib::report
