#include "report/table.h"

#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/units.h"

namespace llmib::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  util::require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  util::require(cells.size() == headers_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label,
                            const std::vector<double>& values, int decimals) {
  util::require(values.size() + 1 == headers_.size(),
                "Table: numeric row width mismatch");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(util::format_fixed(v, decimals));
  rows_.push_back(std::move(cells));
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t i = 0; i < headers_.size(); ++i) out += "---|";
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (const auto& c : row) out += " " + c + " |";
    out += "\n";
  }
  return out;
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto line = [&](const std::vector<std::string>& cells) {
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out += util::pad_right(cells[i], widths[i]);
      if (i + 1 < cells.size()) out += "  ";
    }
    out += "\n";
    return out;
  };

  std::string out = line(headers_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 < widths.size()) rule += "  ";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += line(row);
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  util::CsvWriter writer(os, headers_);
  for (const auto& row : rows_) writer.write_row(row);
  return os.str();
}

}  // namespace llmib::report
