#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace llmib::hw {

/// Numeric precisions the suite models. The enum is shared with the quant
/// module (which owns the arithmetic emulation); hw only needs peak rates.
enum class Precision { kFP32, kTF32, kFP16, kBF16, kFP8, kINT8, kINT4 };

/// Bytes per element for a storage precision.
double bytes_per_element(Precision p);

/// Short name ("fp16", "int8", ...).
std::string precision_name(Precision p);

/// Parse a precision name; throws util::ContractViolation on unknown names.
Precision precision_from_name(const std::string& name);

/// Interconnect families appearing in Table II of the paper.
enum class InterconnectKind { kNVLink, kNVLinkC2C, kInfinityFabric, kRoCE, kPCIeRDU, kNone };

std::string interconnect_name(InterconnectKind k);

/// Datasheet description of a single accelerator device plus the node it is
/// deployed in (Table II in the paper). All rates are *peak* numbers; the
/// DeviceModel applies efficiency curves on top.
struct AcceleratorSpec {
  std::string name;       ///< e.g. "A100"
  std::string vendor;     ///< "NVIDIA", "AMD", "Intel Habana", "SambaNova"

  /// Peak dense matrix throughput per precision, in TFLOP/s (TOPS for int).
  /// Missing precision == unsupported on this device.
  std::map<Precision, double> peak_tflops;

  double hbm_bandwidth_gbs = 0.0;   ///< device memory bandwidth, GB/s
  double memory_gb = 0.0;           ///< device memory capacity, GB
  int devices_per_node = 1;         ///< Table II "# Devices"

  InterconnectKind interconnect = InterconnectKind::kNone;
  double interconnect_gbs = 0.0;    ///< per-device aggregate link bandwidth, GB/s

  double idle_watts = 0.0;          ///< device idle draw
  double tdp_watts = 0.0;           ///< thermal design power

  // --- Architecture quirks the paper calls out -------------------------
  /// SN40L: 3-tier memory (SRAM + HBM + DDR). Extra DDR capacity backs long
  /// sequences; the simulator treats it as overflow capacity at lower BW.
  double tier3_memory_gb = 0.0;
  double tier3_bandwidth_gbs = 0.0;
  /// Gaudi2: MME + TPC heterogeneous overlap; fraction of decode compute
  /// that can run concurrently with memory traffic.
  double hetero_overlap = 0.0;
  /// MI250: NUMA-balancing page-fault stalls; per-step extra latency factor
  /// that grows once the device saturates (paper: "early saturation").
  double saturation_penalty = 0.0;
  /// Batch size at which the compute units are effectively saturated.
  /// Smaller values mean the device reaches peak utilization earlier
  /// (and, with saturation_penalty, degrades past it).
  double saturation_batch = 64.0;
  /// Fraction of peak a well-tuned kernel reaches on this device (captures
  /// e.g. H100 transformer engine vs A100; out-of-the-box AMD numbers).
  double kernel_quality = 1.0;
  /// Fraction of device memory unusable for weights/KV (runtime reservation,
  /// padded static shapes). Gaudi2's padded allocation makes this large,
  /// which is what produces its early OOMs in the paper.
  double memory_overhead_frac = 0.08;
  /// Fixed per-request latency added to TTFT (graph dispatch / pipeline
  /// fill). Dominates SN40L's high TTFT despite its low ITL.
  double fixed_request_latency_s = 0.0;
  /// Gaudi2-style static-shape execution: KV for the full batch at maximum
  /// context is preallocated up front, so oversubscription fails hard (OOM)
  /// instead of degrading into waves (paper §VI.4 and footnote 1).
  bool static_shape_kv = false;

  bool supports(Precision p) const { return peak_tflops.count(p) > 0; }
  double peak_for(Precision p) const;  ///< TFLOP/s; throws if unsupported
  double node_memory_gb() const { return memory_gb * devices_per_node; }

  /// Host PCIe (gen4 x16 class) bandwidth assumed for kNone specs that do
  /// not state an interconnect rate — the ONLY case the comm layer falls
  /// back; specs naming a real fabric must state its bandwidth.
  static constexpr double kFallbackInterconnectGbs = 16.0;

  /// Aggregate per-device link bandwidth the comm layer should use:
  /// `interconnect_gbs` when stated, else the documented kNone fallback.
  double effective_interconnect_gbs() const {
    return interconnect_gbs > 0 ? interconnect_gbs : kFallbackInterconnectGbs;
  }
  /// True when effective_interconnect_gbs() is the fallback default, so
  /// sweeps can surface (gauge) rather than silently model PCIe.
  bool interconnect_is_fallback() const { return interconnect_gbs <= 0; }
};

/// Registry of every platform evaluated in the paper (Table II).
class AcceleratorRegistry {
 public:
  /// Built-in registry with A100, H100, GH200, MI250, MI300X, Gaudi2, SN40L.
  static const AcceleratorRegistry& builtin();

  const AcceleratorSpec& get(const std::string& name) const;  ///< throws if unknown
  std::optional<AcceleratorSpec> try_get(const std::string& name) const;
  std::vector<std::string> names() const;
  void register_spec(AcceleratorSpec spec);  ///< throws on duplicate name

 private:
  std::map<std::string, AcceleratorSpec> specs_;
};

}  // namespace llmib::hw
