#pragma once

#include "hw/accelerator.h"

namespace llmib::hw {

/// A unit of device work: how many multiply-accumulate FLOPs it performs
/// and how many bytes it moves through device memory.
struct WorkKernel {
  double flops = 0.0;
  double bytes = 0.0;
};

/// Efficiency factors applied on top of datasheet peaks. The framework
/// model produces these; the device model consumes them.
struct Efficiency {
  double compute = 1.0;  ///< fraction of peak FLOP/s actually achieved
  double memory = 1.0;   ///< fraction of peak bandwidth actually achieved
};

/// Roofline evaluator for a single accelerator at a given math precision.
///
/// time(kernel) = max(compute_time, memory_time)
///                + (1 - overlap) * min(compute_time, memory_time)
///
/// where `overlap` captures how well the device hides memory traffic under
/// compute (Gaudi2's MME/TPC heterogeneous pipeline raises it; see the
/// paper §VI.4). On top of that, `utilization_ramp` models the fraction of
/// compute peak reachable given how many tokens are in flight, and
/// `saturation_derate` models post-saturation degradation (MI250's early
/// saturation, SN40L's limited batch window).
class DeviceModel {
 public:
  DeviceModel(const AcceleratorSpec& spec, Precision precision);

  const AcceleratorSpec& spec() const { return spec_; }
  Precision precision() const { return precision_; }

  /// Peak effective FLOP/s for this device+precision including the device's
  /// intrinsic kernel quality (before framework efficiency).
  double peak_flops() const { return peak_flops_; }
  double peak_bandwidth_bytes() const { return peak_bw_bytes_; }

  /// Fraction of compute peak reachable with `tokens_in_flight` tokens being
  /// processed in parallel (batch for decode; batch*seq_len for prefill).
  /// Saturating curve: t / (t + half_saturation).
  double utilization_ramp(double tokens_in_flight) const;

  /// Multiplicative slowdown applied once the device runs past its
  /// saturation batch (1.0 below it). Models paper Fig. 17 / Fig. 35.
  double saturation_derate(double batch) const;

  double compute_time_s(double flops, const Efficiency& eff,
                        double tokens_in_flight) const;
  double memory_time_s(double bytes, const Efficiency& eff) const;

  /// Full roofline time for one kernel at the given parallelism.
  double kernel_time_s(const WorkKernel& k, const Efficiency& eff,
                       double tokens_in_flight, double batch) const;

  /// Compute utilization of the device for a completed kernel (used by the
  /// power model): achieved_flops_rate / peak.
  double achieved_compute_utilization(const WorkKernel& k, double elapsed_s) const;
  double achieved_memory_utilization(const WorkKernel& k, double elapsed_s) const;

  /// Usable device memory in bytes after runtime reservations.
  double usable_memory_bytes() const;
  /// Usable overflow (tier-3) memory in bytes, 0 when absent.
  double tier3_memory_bytes() const;

 private:
  AcceleratorSpec spec_;
  Precision precision_;
  double peak_flops_ = 0.0;
  double peak_bw_bytes_ = 0.0;
  double overlap_ = 0.8;
};

}  // namespace llmib::hw
