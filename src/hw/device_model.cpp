#include "hw/device_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/units.h"

namespace llmib::hw {

using util::require;

DeviceModel::DeviceModel(const AcceleratorSpec& spec, Precision precision)
    : spec_(spec), precision_(precision) {
  require(spec.supports(precision),
          spec.name + " does not support " + precision_name(precision));
  peak_flops_ = spec.peak_for(precision) * util::kTera * spec.kernel_quality;
  // Out-of-the-box kernels (the paper's AMD/Gaudi numbers, footnote 1) miss
  // peak bandwidth as well as peak compute; tuned stacks (quality >= 1)
  // still cannot exceed the datasheet bandwidth.
  peak_bw_bytes_ = spec.hbm_bandwidth_gbs * 1e9 * std::min(1.0, spec.kernel_quality);
  // Base overlap of compute under memory traffic; heterogeneous engines
  // (Gaudi2 MME+TPC) hide more of the smaller component.
  overlap_ = std::clamp(0.80 + 0.40 * spec.hetero_overlap, 0.0, 0.99);
}

double DeviceModel::utilization_ramp(double tokens_in_flight) const {
  if (tokens_in_flight <= 0) return 0.0;
  const double half = std::max(1.0, spec_.saturation_batch);
  return tokens_in_flight / (tokens_in_flight + half);
}

double DeviceModel::saturation_derate(double batch) const {
  if (spec_.saturation_penalty <= 0) return 1.0;
  const double sat = std::max(1.0, spec_.saturation_batch);
  if (batch <= sat) return 1.0;
  return 1.0 + spec_.saturation_penalty * (batch - sat) / sat;
}

double DeviceModel::compute_time_s(double flops, const Efficiency& eff,
                                   double tokens_in_flight) const {
  require(flops >= 0, "compute_time_s: negative flops");
  if (flops == 0) return 0.0;
  const double rate = peak_flops_ * std::clamp(eff.compute, 1e-6, 1.0) *
                      utilization_ramp(tokens_in_flight);
  return flops / std::max(rate, 1.0);
}

double DeviceModel::memory_time_s(double bytes, const Efficiency& eff) const {
  require(bytes >= 0, "memory_time_s: negative bytes");
  if (bytes == 0) return 0.0;
  const double rate = peak_bw_bytes_ * std::clamp(eff.memory, 1e-6, 1.0);
  return bytes / std::max(rate, 1.0);
}

double DeviceModel::kernel_time_s(const WorkKernel& k, const Efficiency& eff,
                                  double tokens_in_flight, double batch) const {
  const double ct = compute_time_s(k.flops, eff, tokens_in_flight);
  const double mt = memory_time_s(k.bytes, eff);
  const double base = std::max(ct, mt) + (1.0 - overlap_) * std::min(ct, mt);
  return base * saturation_derate(batch);
}

double DeviceModel::achieved_compute_utilization(const WorkKernel& k,
                                                 double elapsed_s) const {
  if (elapsed_s <= 0) return 0.0;
  return std::clamp(k.flops / elapsed_s / peak_flops_, 0.0, 1.0);
}

double DeviceModel::achieved_memory_utilization(const WorkKernel& k,
                                                double elapsed_s) const {
  if (elapsed_s <= 0) return 0.0;
  return std::clamp(k.bytes / elapsed_s / peak_bw_bytes_, 0.0, 1.0);
}

double DeviceModel::usable_memory_bytes() const {
  return spec_.memory_gb * util::kGiB * (1.0 - spec_.memory_overhead_frac);
}

double DeviceModel::tier3_memory_bytes() const {
  return spec_.tier3_memory_gb * util::kGiB;
}

}  // namespace llmib::hw
