#include "hw/accelerator.h"

#include "util/check.h"

namespace llmib::hw {

using util::require;

double bytes_per_element(Precision p) {
  switch (p) {
    case Precision::kFP32:
    case Precision::kTF32:
      return 4.0;
    case Precision::kFP16:
    case Precision::kBF16:
      return 2.0;
    case Precision::kFP8:
    case Precision::kINT8:
      return 1.0;
    case Precision::kINT4:
      return 0.5;
  }
  return 4.0;
}

std::string precision_name(Precision p) {
  switch (p) {
    case Precision::kFP32: return "fp32";
    case Precision::kTF32: return "tf32";
    case Precision::kFP16: return "fp16";
    case Precision::kBF16: return "bf16";
    case Precision::kFP8:  return "fp8";
    case Precision::kINT8: return "int8";
    case Precision::kINT4: return "int4";
  }
  return "?";
}

Precision precision_from_name(const std::string& name) {
  if (name == "fp32") return Precision::kFP32;
  if (name == "tf32") return Precision::kTF32;
  if (name == "fp16") return Precision::kFP16;
  if (name == "bf16") return Precision::kBF16;
  if (name == "fp8") return Precision::kFP8;
  if (name == "int8") return Precision::kINT8;
  if (name == "int4") return Precision::kINT4;
  throw util::ContractViolation("unknown precision: " + name);
}

std::string interconnect_name(InterconnectKind k) {
  switch (k) {
    case InterconnectKind::kNVLink: return "NVLink";
    case InterconnectKind::kNVLinkC2C: return "NVLink-C2C";
    case InterconnectKind::kInfinityFabric: return "Infinity Fabric";
    case InterconnectKind::kRoCE: return "RoCE v2";
    case InterconnectKind::kPCIeRDU: return "PCIe inter-RDU";
    case InterconnectKind::kNone: return "N/A";
  }
  return "?";
}

double AcceleratorSpec::peak_for(Precision p) const {
  auto it = peak_tflops.find(p);
  require(it != peak_tflops.end(),
          name + " does not support precision " + precision_name(p));
  return it->second;
}

namespace {

// Datasheet numbers (vendor whitepapers cited in the paper, Table II), plus
// the behavioral knobs DESIGN.md §4 calibrates. Peak TFLOP/s are dense
// (no structured sparsity).
AcceleratorRegistry make_builtin() {
  AcceleratorRegistry reg;

  {
    AcceleratorSpec s;
    s.name = "A100";
    s.vendor = "NVIDIA";
    s.peak_tflops = {{Precision::kFP32, 19.5},  {Precision::kTF32, 156},
                     {Precision::kFP16, 312},   {Precision::kBF16, 312},
                     {Precision::kINT8, 624},   {Precision::kINT4, 1248}};
    s.hbm_bandwidth_gbs = 1555;  // HBM2 40GB SXM
    s.memory_gb = 40;
    s.devices_per_node = 4;
    s.interconnect = InterconnectKind::kNVLink;
    s.interconnect_gbs = 600;
    s.idle_watts = 55;
    s.tdp_watts = 400;
    s.kernel_quality = 1.0;
    s.saturation_batch = 56;  // compute saturates near the top of the sweep
    s.memory_overhead_frac = 0.10;
    reg.register_spec(s);
  }
  {
    AcceleratorSpec s;
    s.name = "H100";
    s.vendor = "NVIDIA";
    s.peak_tflops = {{Precision::kFP32, 67},    {Precision::kTF32, 494},
                     {Precision::kFP16, 989},   {Precision::kBF16, 989},
                     {Precision::kFP8, 1979},   {Precision::kINT8, 1979},
                     {Precision::kINT4, 3958}};
    s.hbm_bandwidth_gbs = 3350;  // HBM3 SXM5
    s.memory_gb = 80;
    s.devices_per_node = 4;
    s.interconnect = InterconnectKind::kNVLink;
    s.interconnect_gbs = 900;
    s.idle_watts = 75;
    s.tdp_watts = 700;
    s.kernel_quality = 1.08;  // transformer engine + 4th-gen tensor cores
    s.saturation_batch = 160;  // keeps scaling well past batch 64
    s.memory_overhead_frac = 0.10;
    reg.register_spec(s);
  }
  {
    AcceleratorSpec s;
    s.name = "GH200";
    s.vendor = "NVIDIA";
    s.peak_tflops = {{Precision::kFP32, 67},    {Precision::kTF32, 494},
                     {Precision::kFP16, 989},   {Precision::kBF16, 989},
                     {Precision::kFP8, 1979},   {Precision::kINT8, 1979},
                     {Precision::kINT4, 3958}};
    s.hbm_bandwidth_gbs = 4000;  // HBM3 96GB variant
    s.memory_gb = 96;
    s.devices_per_node = 1;
    s.interconnect = InterconnectKind::kNVLinkC2C;
    s.interconnect_gbs = 900;  // Grace <-> Hopper C2C
    s.idle_watts = 90;
    s.tdp_watts = 700;
    s.kernel_quality = 1.10;  // H100-class + tighter CPU coupling
    s.saturation_batch = 160;
    s.memory_overhead_frac = 0.08;  // Grace LPDDR offload shrinks reservations
    reg.register_spec(s);
  }
  {
    AcceleratorSpec s;
    s.name = "MI250";
    s.vendor = "AMD";
    s.peak_tflops = {{Precision::kFP32, 90.5},  {Precision::kFP16, 362},
                     {Precision::kBF16, 362},   {Precision::kINT8, 362}};
    s.hbm_bandwidth_gbs = 3276;  // HBM2e
    s.memory_gb = 128;
    s.devices_per_node = 4;
    s.interconnect = InterconnectKind::kInfinityFabric;
    s.interconnect_gbs = 800;  // 8 IF links x 100 GB/s
    s.idle_watts = 90;
    s.tdp_watts = 560;
    s.kernel_quality = 0.48;      // out-of-the-box ROCm kernels (paper footnote)
    s.saturation_batch = 16;      // early saturation (paper Fig. 17)
    s.saturation_penalty = 0.50;  // NUMA-balancing page-fault stalls past peak
    s.memory_overhead_frac = 0.12;
    reg.register_spec(s);
  }
  {
    AcceleratorSpec s;
    s.name = "MI300X";
    s.vendor = "AMD";
    s.peak_tflops = {{Precision::kFP32, 163.4}, {Precision::kFP16, 1307},
                     {Precision::kBF16, 1307},  {Precision::kFP8, 2615},
                     {Precision::kINT8, 2615}};
    s.hbm_bandwidth_gbs = 5300;  // HBM3
    s.memory_gb = 192;
    s.devices_per_node = 8;
    s.interconnect = InterconnectKind::kInfinityFabric;
    s.interconnect_gbs = 1024;
    s.idle_watts = 110;
    s.tdp_watts = 750;
    s.kernel_quality = 0.58;  // out-of-the-box (paper footnote)
    s.saturation_batch = 40;
    s.saturation_penalty = 0.25;
    s.memory_overhead_frac = 0.12;
    reg.register_spec(s);
  }
  {
    AcceleratorSpec s;
    s.name = "Gaudi2";
    s.vendor = "Intel Habana";
    s.peak_tflops = {{Precision::kFP32, 11},   {Precision::kFP16, 432},
                     {Precision::kBF16, 432},  {Precision::kFP8, 865}};
    s.hbm_bandwidth_gbs = 2450;  // HBM2e
    s.memory_gb = 96;
    s.devices_per_node = 8;
    s.interconnect = InterconnectKind::kRoCE;
    s.interconnect_gbs = 300;  // 24 x 100 GbE
    s.idle_watts = 85;
    s.tdp_watts = 600;
    s.kernel_quality = 0.92;   // MME+TPC overlap keeps utilization high
    s.hetero_overlap = 0.45;   // compute/memory overlap (paper §VI.4)
    s.saturation_batch = 64;
    s.memory_overhead_frac = 0.45;  // padded static shapes -> early OOM
    s.static_shape_kv = true;
    reg.register_spec(s);
  }
  {
    AcceleratorSpec s;
    s.name = "SN40L";
    s.vendor = "SambaNova";
    s.peak_tflops = {{Precision::kFP32, 160},  {Precision::kBF16, 638},
                     {Precision::kFP16, 638},  {Precision::kINT8, 1276}};
    s.hbm_bandwidth_gbs = 2000;  // on-package HBM tier
    s.memory_gb = 64;
    s.devices_per_node = 8;
    s.interconnect = InterconnectKind::kPCIeRDU;
    s.interconnect_gbs = 64;  // PCIe-attached inter-RDU fabric
    s.idle_watts = 100;
    s.tdp_watts = 650;
    s.kernel_quality = 1.18;  // dataflow fusion: whole-decoder single kernel
    s.saturation_batch = 28;  // serving setup limited past batch 32
    s.saturation_penalty = 0.30;
    s.tier3_memory_gb = 192;       // off-package DDR per socket
    s.tier3_bandwidth_gbs = 100;
    s.memory_overhead_frac = 0.10;
    s.fixed_request_latency_s = 0.35;  // graph dispatch: high TTFT, low ITL
    reg.register_spec(s);
  }

  return reg;
}

}  // namespace

const AcceleratorRegistry& AcceleratorRegistry::builtin() {
  static const AcceleratorRegistry reg = make_builtin();
  return reg;
}

const AcceleratorSpec& AcceleratorRegistry::get(const std::string& name) const {
  auto it = specs_.find(name);
  require(it != specs_.end(), "unknown accelerator: " + name);
  return it->second;
}

std::optional<AcceleratorSpec> AcceleratorRegistry::try_get(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> AcceleratorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;
}

void AcceleratorRegistry::register_spec(AcceleratorSpec spec) {
  require(!spec.name.empty(), "accelerator spec must have a name");
  require(spec.hbm_bandwidth_gbs > 0, spec.name + ": bandwidth must be positive");
  require(spec.memory_gb > 0, spec.name + ": memory must be positive");
  require(spec.devices_per_node >= 1, spec.name + ": devices_per_node must be >= 1");
  require(!spec.peak_tflops.empty(), spec.name + ": needs at least one precision");
  // The PCIe-default bandwidth is reserved for specs that declare kNone;
  // naming a real fabric without a rate would silently model the fallback.
  require(spec.interconnect == InterconnectKind::kNone || spec.interconnect_gbs > 0,
          spec.name + ": " + interconnect_name(spec.interconnect) +
              " interconnect needs interconnect_gbs > 0");
  const bool inserted = specs_.emplace(spec.name, std::move(spec)).second;
  require(inserted, "duplicate accelerator spec");
}

}  // namespace llmib::hw
