#pragma once

#include <cstdint>

#include "models/config.h"

namespace llmib::models {

/// Knobs for the FLOPs/bytes calculator. Byte widths are passed in as plain
/// doubles so this module stays independent of the hw/quant precision enums.
struct CostOptions {
  double weight_bytes_per_param = 2.0;  ///< fp16 default
  double kv_bytes_per_elem = 2.0;
  double activation_bytes_per_elem = 2.0;
  /// When false, KV cache traffic and storage are computed as if the model
  /// had one KV head per query head — how a framework without GQA-aware
  /// kernels behaves (paper: DS-MII, llama.cpp). MHSA models are unaffected.
  bool gqa_aware = true;
  /// When false, the decode path recomputes attention over the whole prefix
  /// every step instead of reading the KV cache (paper Fig. 2a).
  bool kv_cache_enabled = true;
};

/// First-principles FLOPs / byte-traffic calculator for one model.
///
/// Conventions: a "FLOP" counts both the multiply and the add of a MAC as
/// two operations (2 * params per token for linear layers). Decode-step
/// quantities cover the whole batch for ONE new token per sequence.
class CostModel {
 public:
  CostModel(const ModelConfig& cfg, CostOptions opt);

  const ModelConfig& config() const { return cfg_; }
  const CostOptions& options() const { return opt_; }

  // ---- Static footprints ----------------------------------------------
  /// Total resident weight bytes.
  double weight_bytes() const;
  /// KV-cache bytes appended per token per sequence (all layers, K and V).
  double kv_bytes_per_token() const;

  /// Context actually attended over: min(ctx, sliding_window) when the
  /// model uses windowed attention (Mistral), ctx otherwise.
  double effective_ctx(double ctx) const;

  // ---- Per-token component FLOPs ----------------------------------------
  /// QKV/output projections + FFN (active experts only) for one token,
  /// across all layers. Context-independent.
  double linear_flops_per_token() const;
  /// Attention score+value FLOPs for one token attending over `ctx` keys.
  double attention_flops_per_token(double ctx) const;
  /// LM-head (hidden x vocab) FLOPs for one logit computation.
  double lm_head_flops() const;

  // ---- Prefill (processing `seq_len` prompt tokens per sequence) --------
  /// FLOPs for one sequence's prefill (causal attention: ~s^2/2 term).
  double prefill_flops(std::int64_t seq_len) const;
  /// Device-memory traffic for a whole batch's prefill.
  double prefill_bytes(std::int64_t batch, std::int64_t seq_len) const;

  // ---- Decode (one token per sequence, whole batch) ----------------------
  /// FLOPs for one decode step with average live context `avg_ctx`.
  double decode_flops(std::int64_t batch, double avg_ctx) const;
  /// Device-memory traffic for one decode step.
  double decode_bytes(std::int64_t batch, double avg_ctx) const;

  // ---- MoE weight-traffic model ----------------------------------------
  /// Expected number of distinct experts activated per layer by a batch of
  /// `batch` tokens, assuming uniform routing: E * (1 - (1 - a/E)^batch).
  double expected_experts_touched(std::int64_t batch) const;
  /// Weight bytes actually streamed per step: dense weights fully, MoE
  /// experts only as far as the batch touches them.
  double weight_bytes_touched(std::int64_t batch) const;
  /// Bytes of all expert FFN weights (for dense models this is the FFN).
  double expert_weight_bytes() const;
  /// Expert bytes actually streamed for a batch (touched experts only).
  double expert_weight_bytes_touched(std::int64_t batch) const;
  /// Everything that is NOT expert FFN weights (attention, embeddings,
  /// router) — replicated under expert parallelism.
  double non_expert_weight_bytes() const;

 private:
  double effective_kv_heads_total() const;  ///< honors gqa_aware + per-layer
  double attention_param_flops_per_token() const;

  ModelConfig cfg_;
  CostOptions opt_;
};

}  // namespace llmib::models
