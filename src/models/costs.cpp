#include "models/costs.h"

#include <cmath>

#include "util/check.h"

namespace llmib::models {

using util::require;

CostModel::CostModel(const ModelConfig& cfg, CostOptions opt)
    : cfg_(cfg), opt_(opt) {
  cfg_.validate();
  require(opt.weight_bytes_per_param > 0, "weight bytes must be positive");
  require(opt.kv_bytes_per_elem > 0, "kv bytes must be positive");
  require(opt.activation_bytes_per_elem > 0, "activation bytes must be positive");
}

double CostModel::effective_kv_heads_total() const {
  if (!opt_.gqa_aware) {
    // GQA-unaware kernels materialize K/V per query head.
    return static_cast<double>(cfg_.n_heads) * cfg_.n_layers;
  }
  return static_cast<double>(cfg_.total_kv_heads());
}

double CostModel::weight_bytes() const {
  return static_cast<double>(cfg_.total_params()) * opt_.weight_bytes_per_param;
}

double CostModel::kv_bytes_per_token() const {
  // K and V vectors for every (layer, kv-head).
  return 2.0 * effective_kv_heads_total() * cfg_.head_dim() * opt_.kv_bytes_per_elem;
}

double CostModel::attention_param_flops_per_token() const {
  // 2 FLOPs per parameter; uses real (gqa-aware) KV projection sizes — the
  // projection matmuls are fixed by the checkpoint regardless of kernels.
  double params = 0;
  if (!cfg_.kv_heads_per_layer.empty()) {
    const double qo = 2.0 * cfg_.hidden_size * cfg_.n_heads * cfg_.head_dim();
    for (int kvh : cfg_.kv_heads_per_layer)
      params += qo + 2.0 * cfg_.hidden_size * kvh * cfg_.head_dim();
  } else {
    params = static_cast<double>(cfg_.attention_params_per_layer()) * cfg_.n_layers;
  }
  return 2.0 * params;
}

double CostModel::linear_flops_per_token() const {
  const double attn = attention_param_flops_per_token();
  const double ffn_per_layer = 2.0 * cfg_.ffn_matrices * cfg_.hidden_size *
                               static_cast<double>(cfg_.ffn_intermediate) *
                               cfg_.experts_active;
  return attn + ffn_per_layer * cfg_.n_layers;
}

double CostModel::effective_ctx(double ctx) const {
  require(ctx >= 0, "effective_ctx: negative ctx");
  if (cfg_.sliding_window > 0)
    return std::min(ctx, static_cast<double>(cfg_.sliding_window));
  return ctx;
}

double CostModel::attention_flops_per_token(double ctx) const {
  require(ctx >= 0, "attention_flops_per_token: negative ctx");
  // QK^T (2*d per key per head) + attn*V (2*d per key per head), over the
  // attended window only.
  return 4.0 * cfg_.n_heads * cfg_.head_dim() * effective_ctx(ctx) * cfg_.n_layers;
}

double CostModel::lm_head_flops() const {
  return 2.0 * cfg_.hidden_size * static_cast<double>(cfg_.vocab_size);
}

double CostModel::prefill_flops(std::int64_t seq_len) const {
  require(seq_len > 0, "prefill_flops: seq_len must be > 0");
  const double s = static_cast<double>(seq_len);
  // Causal attention: token i attends over i keys -> s*(s+1)/2 pairs.
  const double attn_pairs = s * (s + 1.0) / 2.0;
  const double attn =
      4.0 * cfg_.n_heads * cfg_.head_dim() * attn_pairs * cfg_.n_layers;
  // Only the last position's logits are needed to start generation.
  return s * linear_flops_per_token() + attn + lm_head_flops();
}

double CostModel::prefill_bytes(std::int64_t batch, std::int64_t seq_len) const {
  require(batch > 0, "prefill_bytes: batch must be > 0");
  require(seq_len > 0, "prefill_bytes: seq_len must be > 0");
  const double b = static_cast<double>(batch);
  const double s = static_cast<double>(seq_len);
  const double weights = weight_bytes_touched(batch);
  const double kv_write = b * s * kv_bytes_per_token();
  // Layer inputs/outputs + FFN intermediates streamed through HBM.
  const double activations =
      b * s * cfg_.hidden_size * 4.0 * cfg_.n_layers * opt_.activation_bytes_per_elem;
  return weights + kv_write + activations;
}

double CostModel::decode_flops(std::int64_t batch, double avg_ctx) const {
  require(batch > 0, "decode_flops: batch must be > 0");
  require(avg_ctx >= 0, "decode_flops: negative ctx");
  double attn = attention_flops_per_token(avg_ctx);
  if (!opt_.kv_cache_enabled) {
    // Without a KV cache the K/V of the entire prefix are recomputed each
    // step: the per-token linear work is paid for every live context token.
    attn += avg_ctx * linear_flops_per_token();
  }
  return static_cast<double>(batch) *
         (linear_flops_per_token() + attn + lm_head_flops());
}

double CostModel::decode_bytes(std::int64_t batch, double avg_ctx) const {
  require(batch > 0, "decode_bytes: batch must be > 0");
  require(avg_ctx >= 0, "decode_bytes: negative ctx");
  const double b = static_cast<double>(batch);
  const double weights = weight_bytes_touched(batch);
  double kv_traffic;
  if (opt_.kv_cache_enabled) {
    // Read the whole cache once per step, append one token.
    kv_traffic = b * (avg_ctx + 1.0) * kv_bytes_per_token();
  } else {
    // Recomputation streams the prefix activations instead of a cache; the
    // traffic is the activations of every recomputed token.
    kv_traffic = b * avg_ctx * cfg_.hidden_size * 2.0 * cfg_.n_layers *
                 opt_.activation_bytes_per_elem;
  }
  const double activations =
      b * cfg_.hidden_size * 4.0 * cfg_.n_layers * opt_.activation_bytes_per_elem;
  return weights + kv_traffic + activations;
}

double CostModel::expected_experts_touched(std::int64_t batch) const {
  if (cfg_.ffn != FfnKind::kMoE) return 1.0;
  const double e = cfg_.n_experts;
  const double a = cfg_.experts_active;
  const double b = static_cast<double>(batch);
  return e * (1.0 - std::pow(1.0 - a / e, b));
}

double CostModel::expert_weight_bytes() const {
  const double expert_params = static_cast<double>(cfg_.ffn_matrices) *
                               cfg_.hidden_size *
                               static_cast<double>(cfg_.ffn_intermediate) *
                               cfg_.n_experts * cfg_.n_layers;
  return expert_params * opt_.weight_bytes_per_param;
}

double CostModel::expert_weight_bytes_touched(std::int64_t batch) const {
  require(batch > 0, "expert_weight_bytes_touched: batch must be > 0");
  if (cfg_.ffn != FfnKind::kMoE) return expert_weight_bytes();
  return expert_weight_bytes() * expected_experts_touched(batch) / cfg_.n_experts;
}

double CostModel::non_expert_weight_bytes() const {
  return weight_bytes() - expert_weight_bytes();
}

double CostModel::weight_bytes_touched(std::int64_t batch) const {
  require(batch > 0, "weight_bytes_touched: batch must be > 0");
  return non_expert_weight_bytes() + expert_weight_bytes_touched(batch);
}

}  // namespace llmib::models
