#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace llmib::models {

/// Attention family (paper §II-A / Fig. 27).
enum class AttentionKind { kMHSA, kGQA };

/// Feed-forward family (paper §II-A / Fig. 26).
enum class FfnKind { kDense, kMoE };

std::string attention_name(AttentionKind k);
std::string ffn_name(FfnKind k);

/// Neural architecture configuration of one LLM — exactly the columns of
/// Table I in the paper, plus head_dim (needed for Gemma-style models whose
/// head_dim != hidden/heads) and an optional per-layer KV-head override
/// (needed for DeciLM-7B, whose NAS picks KV heads per layer from {1,2,4}).
struct ModelConfig {
  std::string name;
  int n_layers = 0;
  int hidden_size = 0;
  AttentionKind attention = AttentionKind::kMHSA;
  int n_heads = 0;
  int n_kv_heads = 0;           ///< uniform value; see kv_heads_per_layer
  FfnKind ffn = FfnKind::kDense;
  int n_experts = 1;            ///< 1 for dense
  int experts_active = 1;       ///< experts activated per token (Mixtral: 2)
  std::int64_t ffn_intermediate = 0;
  /// Projection matrices per FFN: 3 = gated (SwiGLU/GeGLU, LLaMA-style),
  /// 2 = classic up/down MLP (GPT-J, OPT, Bloom).
  int ffn_matrices = 3;
  std::int64_t max_seq_len = 0;
  std::int64_t vocab_size = 0;
  /// Sliding-window attention span (Mistral-7B: 4096); 0 = full attention.
  std::int64_t sliding_window = 0;
  int head_dim_override = 0;    ///< 0 => hidden_size / n_heads

  /// DeciLM-style variable GQA: if non-empty, must have n_layers entries and
  /// overrides n_kv_heads layer-by-layer.
  std::vector<int> kv_heads_per_layer;

  int head_dim() const {
    return head_dim_override > 0 ? head_dim_override : hidden_size / n_heads;
  }

  /// Total KV heads across all layers (Table I discussion: LLaMA-3-8B has
  /// 8*32 = 256; DeciLM-7B has 67).
  std::int64_t total_kv_heads() const;

  /// Parameter counts (LLaMA-style SwiGLU FFN, untied embeddings).
  std::int64_t embedding_params() const;      ///< input embed + LM head
  std::int64_t attention_params_per_layer() const;
  std::int64_t ffn_params_per_layer() const;  ///< all experts + router
  std::int64_t total_params() const;
  std::int64_t active_params() const;         ///< MoE: only active experts

  /// Validate invariants; throws util::ContractViolation on bad configs.
  void validate() const;
};

/// Registry of every model benchmarked in the paper: the eight Table-I
/// models, the ~7B perplexity-scatter zoo (Fig. 10/29), DeciLM-7B (Fig. 4a)
/// and the LLaMA-68M speculative-decoding draft (Fig. 4b).
class ModelRegistry {
 public:
  static const ModelRegistry& builtin();

  const ModelConfig& get(const std::string& name) const;  ///< throws if unknown
  std::optional<ModelConfig> try_get(const std::string& name) const;
  std::vector<std::string> names() const;
  void register_model(ModelConfig cfg);  ///< validates; throws on duplicate

  /// The eight primary Table-I models, in the paper's row order.
  static std::vector<std::string> table1_names();
  /// The ~7B models of the perplexity scatter plots.
  static std::vector<std::string> perplexity_zoo_names();

 private:
  std::map<std::string, ModelConfig> models_;
};

}  // namespace llmib::models
