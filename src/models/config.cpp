#include "models/config.h"

#include "util/check.h"

namespace llmib::models {

using util::require;

std::string attention_name(AttentionKind k) {
  return k == AttentionKind::kMHSA ? "MHSA" : "GQA";
}

std::string ffn_name(FfnKind k) { return k == FfnKind::kDense ? "Dense" : "MoE"; }

std::int64_t ModelConfig::total_kv_heads() const {
  if (!kv_heads_per_layer.empty()) {
    std::int64_t total = 0;
    for (int h : kv_heads_per_layer) total += h;
    return total;
  }
  return static_cast<std::int64_t>(n_kv_heads) * n_layers;
}

std::int64_t ModelConfig::embedding_params() const {
  // Untied input embedding + LM head (LLaMA-style).
  return 2ll * vocab_size * hidden_size;
}

std::int64_t ModelConfig::attention_params_per_layer() const {
  const std::int64_t q = 1ll * hidden_size * n_heads * head_dim();
  const std::int64_t o = 1ll * n_heads * head_dim() * hidden_size;
  // Uses the uniform KV head count; variable-GQA models are handled by the
  // cost calculator which sums per layer.
  const std::int64_t kv = 2ll * hidden_size * n_kv_heads * head_dim();
  return q + o + kv;
}

std::int64_t ModelConfig::ffn_params_per_layer() const {
  // Gated (3-matrix) or classic (2-matrix) FFN per expert, plus MoE router.
  const std::int64_t per_expert =
      static_cast<std::int64_t>(ffn_matrices) * hidden_size * ffn_intermediate;
  const std::int64_t router =
      ffn == FfnKind::kMoE ? 1ll * hidden_size * n_experts : 0;
  return per_expert * n_experts + router;
}

std::int64_t ModelConfig::total_params() const {
  std::int64_t layers = 0;
  if (!kv_heads_per_layer.empty()) {
    for (int kvh : kv_heads_per_layer) {
      const std::int64_t q = 1ll * hidden_size * n_heads * head_dim();
      const std::int64_t o = q;
      const std::int64_t kv = 2ll * hidden_size * kvh * head_dim();
      layers += q + o + kv + ffn_params_per_layer();
    }
  } else {
    layers = static_cast<std::int64_t>(n_layers) *
             (attention_params_per_layer() + ffn_params_per_layer());
  }
  return layers + embedding_params();
}

std::int64_t ModelConfig::active_params() const {
  if (ffn != FfnKind::kMoE) return total_params();
  const std::int64_t per_expert =
      static_cast<std::int64_t>(ffn_matrices) * hidden_size * ffn_intermediate;
  const std::int64_t inactive =
      static_cast<std::int64_t>(n_experts - experts_active) * per_expert * n_layers;
  return total_params() - inactive;
}

void ModelConfig::validate() const {
  require(!name.empty(), "model needs a name");
  require(n_layers > 0, name + ": n_layers must be > 0");
  require(hidden_size > 0, name + ": hidden_size must be > 0");
  require(n_heads > 0, name + ": n_heads must be > 0");
  require(n_kv_heads > 0, name + ": n_kv_heads must be > 0");
  require(n_kv_heads <= n_heads, name + ": n_kv_heads must be <= n_heads");
  require(n_heads % n_kv_heads == 0, name + ": n_heads must divide by n_kv_heads");
  require(attention != AttentionKind::kMHSA || n_kv_heads == n_heads,
          name + ": MHSA requires n_kv_heads == n_heads");
  require(ffn_intermediate > 0, name + ": ffn_intermediate must be > 0");
  require(ffn_matrices == 2 || ffn_matrices == 3,
          name + ": ffn_matrices must be 2 or 3");
  require(vocab_size > 0, name + ": vocab_size must be > 0");
  require(max_seq_len > 0, name + ": max_seq_len must be > 0");
  require(sliding_window >= 0, name + ": sliding_window must be >= 0");
  require(n_experts >= 1, name + ": n_experts must be >= 1");
  require(experts_active >= 1 && experts_active <= n_experts,
          name + ": experts_active must be in [1, n_experts]");
  require(ffn != FfnKind::kDense || n_experts == 1,
          name + ": dense FFN must have exactly one expert");
  require(kv_heads_per_layer.empty() ||
              kv_heads_per_layer.size() == static_cast<std::size_t>(n_layers),
          name + ": kv_heads_per_layer must have n_layers entries");
  for (int h : kv_heads_per_layer)
    require(h >= 1 && h <= n_heads, name + ": per-layer kv heads out of range");
  require(head_dim_override > 0 || hidden_size % n_heads == 0,
          name + ": hidden_size must divide by n_heads (or set head_dim_override)");
}

namespace {

ModelConfig dense(std::string name, int layers, int hidden, AttentionKind attn,
                  int heads, int kv_heads, std::int64_t ffn_inter,
                  std::int64_t max_seq, std::int64_t vocab) {
  ModelConfig m;
  m.name = std::move(name);
  m.n_layers = layers;
  m.hidden_size = hidden;
  m.attention = attn;
  m.n_heads = heads;
  m.n_kv_heads = kv_heads;
  m.ffn = FfnKind::kDense;
  m.ffn_intermediate = ffn_inter;
  m.max_seq_len = max_seq;
  m.vocab_size = vocab;
  return m;
}

ModelRegistry make_builtin() {
  ModelRegistry reg;

  // ---- Table I (paper Appendix C) -------------------------------------
  reg.register_model(dense("LLaMA-2-7B", 32, 4096, AttentionKind::kMHSA, 32, 32,
                           11008, 4096, 32000));
  reg.register_model(dense("LLaMA-3-8B", 32, 4096, AttentionKind::kGQA, 32, 8,
                           14336, 8192, 128256));
  {
    ModelConfig m = dense("Mistral-7B", 32, 4096, AttentionKind::kGQA, 32, 8,
                          14336, 32768, 32000);
    m.sliding_window = 4096;  // paper Appendix A: sliding window attention
    reg.register_model(m);
  }
  reg.register_model(dense("Qwen2-7B", 28, 3584, AttentionKind::kGQA, 28, 4,
                           18944, 131072, 152064));
  reg.register_model(dense("LLaMA-2-70B", 80, 8192, AttentionKind::kGQA, 64, 8,
                           28672, 4096, 32000));
  reg.register_model(dense("LLaMA-3-70B", 80, 8192, AttentionKind::kGQA, 64, 8,
                           28672, 8192, 128256));
  reg.register_model(dense("Qwen2-72B", 80, 8192, AttentionKind::kGQA, 64, 8,
                           29568, 131072, 152064));
  {
    ModelConfig m = dense("Mixtral-8x7B", 32, 4096, AttentionKind::kGQA, 32, 8,
                          14336, 32768, 32000);
    m.ffn = FfnKind::kMoE;
    m.n_experts = 8;
    m.experts_active = 2;
    reg.register_model(m);
  }

  // ---- NAS model (Fig. 4a): DeciLM-7B, 67 KV heads across 32 layers ----
  {
    ModelConfig m = dense("DeciLM-7B", 32, 4096, AttentionKind::kGQA, 32, 4,
                          11008, 8192, 32000);
    // NAS-selected per-layer KV heads from {1,2,4}: 9x4 + 8x2 + 15x1 = 67.
    m.kv_heads_per_layer.assign(9, 4);
    m.kv_heads_per_layer.insert(m.kv_heads_per_layer.end(), 8, 2);
    m.kv_heads_per_layer.insert(m.kv_heads_per_layer.end(), 15, 1);
    reg.register_model(m);
  }

  // ---- Perplexity-scatter zoo (Fig. 10 / Fig. 29) ----------------------
  reg.register_model(dense("LLaMA-7B", 32, 4096, AttentionKind::kMHSA, 32, 32,
                           11008, 2048, 32000));
  {
    ModelConfig m = dense("GPT-J-6B", 28, 4096, AttentionKind::kMHSA, 16, 16,
                          16384, 2048, 50400);
    m.ffn_matrices = 2;  // classic GELU MLP
    reg.register_model(m);
  }
  {
    ModelConfig m = dense("OPT-6.7B", 32, 4096, AttentionKind::kMHSA, 32, 32,
                          16384, 2048, 50272);
    m.ffn_matrices = 2;
    reg.register_model(m);
  }
  {
    ModelConfig m = dense("Gemma-7B", 28, 3072, AttentionKind::kMHSA, 16, 16,
                          24576, 8192, 256000);
    m.head_dim_override = 256;  // paper: "larger head and intermediate size"
    reg.register_model(m);
  }
  reg.register_model(dense("Qwen1.5-7B", 32, 4096, AttentionKind::kMHSA, 32, 32,
                           11008, 32768, 151936));
  reg.register_model(dense("Aquila-7B", 32, 4096, AttentionKind::kMHSA, 32, 32,
                           11008, 2048, 100008));
  {
    ModelConfig m = dense("Bloom-7.1B", 30, 4096, AttentionKind::kMHSA, 32, 32,
                          16384, 2048, 250880);
    m.ffn_matrices = 2;
    reg.register_model(m);
  }

  // ---- Speculative-decoding draft model (Fig. 4b) ----------------------
  reg.register_model(dense("LLaMA-68M", 2, 768, AttentionKind::kMHSA, 12, 12,
                           3072, 2048, 32000));

  return reg;
}

}  // namespace

const ModelRegistry& ModelRegistry::builtin() {
  static const ModelRegistry reg = make_builtin();
  return reg;
}

const ModelConfig& ModelRegistry::get(const std::string& name) const {
  auto it = models_.find(name);
  require(it != models_.end(), "unknown model: " + name);
  return it->second;
}

std::optional<ModelConfig> ModelRegistry::try_get(const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, cfg] : models_) out.push_back(name);
  return out;
}

void ModelRegistry::register_model(ModelConfig cfg) {
  cfg.validate();
  const std::string name = cfg.name;
  const bool inserted = models_.emplace(name, std::move(cfg)).second;
  require(inserted, "duplicate model: " + name);
}

std::vector<std::string> ModelRegistry::table1_names() {
  return {"LLaMA-2-7B",  "LLaMA-3-8B",  "Mistral-7B", "Qwen2-7B",
          "LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B",  "Mixtral-8x7B"};
}

std::vector<std::string> ModelRegistry::perplexity_zoo_names() {
  return {"LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B", "DeciLM-7B", "GPT-J-6B",
          "OPT-6.7B",   "Gemma-7B",   "Qwen1.5-7B", "Aquila-7B", "Bloom-7.1B",
          "LLaMA-7B"};
}

}  // namespace llmib::models
