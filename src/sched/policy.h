#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sched/types.h"

namespace llmib::sched {

/// Unified KV-capacity model. Replaces the three overlapping
/// `kv_capacity_tokens` / `kv_capacity_bytes` / `kv_bytes_per_token` knobs:
/// a budget is either unlimited, token-denominated (a fixed token count), or
/// byte-denominated (a fixed byte pool divided by the CURRENT bytes-per-token
/// — the form quantized KV needs, where a mid-run FP8 switch shrinks each
/// token's cost and the SAME pool admits more residents).
class KvBudget {
 public:
  /// Unlimited capacity (admission never blocks on KV).
  constexpr KvBudget() = default;

  static KvBudget unlimited() { return KvBudget(); }
  /// Token-denominated budget; 0 means unlimited.
  static KvBudget tokens(std::int64_t capacity_tokens);
  /// Byte-denominated budget: effective tokens = bytes / bytes_per_token,
  /// recomputed whenever set_bytes_per_token changes the per-token cost.
  static KvBudget bytes(std::int64_t capacity_bytes,
                        std::int64_t bytes_per_token);

  bool is_unlimited() const {
    return capacity_tokens_ == 0 && capacity_bytes_ == 0;
  }
  bool byte_denominated() const { return capacity_bytes_ > 0; }

  /// Token capacity admission checks against (0 = unlimited).
  std::int64_t effective_tokens() const {
    if (capacity_bytes_ > 0) return capacity_bytes_ / bytes_per_token_;
    return capacity_tokens_;
  }
  std::int64_t capacity_bytes() const { return capacity_bytes_; }
  std::int64_t bytes_per_token() const { return bytes_per_token_; }

  /// Mid-run per-token cost change (quantization switch). Only meaningful on
  /// a byte-denominated budget; throws otherwise.
  void set_bytes_per_token(std::int64_t bytes);

  friend bool operator==(const KvBudget&, const KvBudget&) = default;

 private:
  std::int64_t capacity_tokens_ = 0;
  std::int64_t capacity_bytes_ = 0;
  std::int64_t bytes_per_token_ = 0;
};

/// Admission-ordering policy: which waiting request is the next candidate,
/// plus any per-request bookkeeping (aging) that ordering needs. The
/// scheduler owns exactly one instance; state (e.g. the SJF aging map) lives
/// here, so every policy instance must be private to one scheduler — that is
/// why Scheduler::Config carries FACTORIES, not shared instances.
class AdmissionPolicy {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  /// Optional eligibility filter (the tenant allocator restricts selection
  /// to one tenant's requests). Empty function = everything eligible.
  using Eligible = std::function<bool(const Request&)>;

  virtual ~AdmissionPolicy() = default;
  virtual const char* name() const = 0;

  /// One planning round passed with these requests still waiting (called
  /// once per admission round, BEFORE any select of that round).
  virtual void on_planning_round(const std::deque<Request>& queue) {
    (void)queue;
  }

  /// `id` left the waiting queue — admitted OR cancelled. Policies holding
  /// per-request state (the aging map) MUST drop it here; missing the cancel
  /// path is exactly the leak the pre-refactor scheduler made impossible by
  /// keeping aging state inline in the queue entry.
  virtual void on_remove(RequestId id) { (void)id; }

  /// Index of the best admission candidate among eligible queued requests,
  /// or npos when none is eligible. Must be deterministic: equal ranks keep
  /// queue (arrival) order.
  virtual std::size_t select(const std::deque<Request>& queue,
                             const Eligible& eligible) const = 0;

  std::size_t select(const std::deque<Request>& queue) const {
    return select(queue, Eligible());
  }
};

/// First-come first-served: the queue head (oldest eligible request).
class FcfsAdmissionPolicy final : public AdmissionPolicy {
 public:
  using AdmissionPolicy::select;  // keep the 1-arg convenience visible
  const char* name() const override { return "fcfs"; }
  std::size_t select(const std::deque<Request>& queue,
                     const Eligible& eligible) const override;
};

/// Shortest-job-first with optional aging: effective work = prompt +
/// max_new_tokens minus rounds_waiting * aging_tokens_per_round, so a
/// starved long request eventually outranks the stream of fresh short ones.
/// Bitwise-identical to the pre-policy-object scheduler's inline SJF path.
class SjfAdmissionPolicy final : public AdmissionPolicy {
 public:
  using AdmissionPolicy::select;  // keep the 1-arg convenience visible
  explicit SjfAdmissionPolicy(std::int64_t aging_tokens_per_round);

  const char* name() const override { return "sjf"; }
  void on_planning_round(const std::deque<Request>& queue) override;
  void on_remove(RequestId id) override;
  std::size_t select(const std::deque<Request>& queue,
                     const Eligible& eligible) const override;

  std::int64_t aging_tokens_per_round() const { return aging_; }
  /// Rounds of aging credit accrued by a waiting request (0 if untracked).
  std::int64_t aged_rounds(RequestId id) const;
  /// Number of requests with live aging entries — must always equal the
  /// number of waiting requests that have seen a round (leak regression).
  std::size_t tracked_requests() const { return rounds_.size(); }

 private:
  std::int64_t aging_ = 0;
  std::unordered_map<RequestId, std::int64_t> rounds_;
};

/// Factory: constructs a fresh policy instance per scheduler.
using AdmissionFactory = std::function<std::unique_ptr<AdmissionPolicy>()>;

/// The enum shim: maps the legacy (QueueOrder, aging) knobs onto the policy
/// objects that now implement them.
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    QueueOrder order, std::int64_t sjf_aging_tokens_per_round);

}  // namespace llmib::sched
