#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sched/policy.h"
#include "sched/types.h"

namespace llmib::sched {

/// What a tenant optimizes for — decides both its strict-priority rank and
/// which SLO its welfare attainment is measured against.
enum class SloClass {
  kLatencyBound,     ///< interactive chat: TTFT SLO
  kThroughputBound,  ///< offline batch: end-to-end completion SLO
};

/// Cross-tenant arbitration policy.
enum class FairPolicy {
  /// Tenant-blind arrival order — the pre-tenancy scheduler. A greedy batch
  /// tenant's giant requests head-of-line block everyone behind them.
  kFifo,
  /// Latency-bound tenants always admit before throughput-bound ones
  /// (tie: lower tenant id). Protects chat absolutely, starves batch
  /// whenever chat has a backlog.
  kStrictPriority,
  /// Karma-style credit allocator: weighted fair shares of the KV pool;
  /// tenants under their share bank the unused capacity as credits, and
  /// spending banked credits is the only way to burst beyond the share.
  kFairCredit,
};

const char* slo_class_name(SloClass c);
const char* fair_policy_name(FairPolicy p);
/// Parses "fifo", "priority"/"strict-priority" or "credit"/"fair-credit".
bool parse_fair_policy(const std::string& name, FairPolicy* out);

/// One tenant's declaration: SLO class, weight, quotas and credit account.
struct TenantSpec {
  TenantId id = 0;
  std::string name;
  SloClass slo = SloClass::kLatencyBound;
  /// Relative share of capacity under kFairCredit (fair_t = C * w_t / sum w).
  double weight = 1.0;
  /// Hard per-tenant cap on reserved KV tokens (0 = none).
  std::int64_t kv_quota_tokens = 0;
  /// Hard per-tenant cap on concurrently live sequences (0 = none).
  std::int64_t slot_quota = 0;
  /// Starting credit balance, in token-rounds (one credit holds one KV token
  /// one planning round beyond the fair share).
  std::int64_t credit_init = 0;
  /// Bank ceiling in token-rounds (0 = uncapped): bounds how long a tenant
  /// can hoard unused capacity before using it.
  std::int64_t credit_cap = 0;
  /// Per-tenant TTFT SLO for latency-bound welfare (0 = the run's default).
  double slo_ttft_s = 0.0;
  /// Per-tenant end-to-end SLO for throughput-bound welfare (0 = none).
  double slo_e2e_s = 0.0;
};

/// Tenancy of one scheduler: the arbitration policy plus the declared
/// tenants. An empty tenant list is the single-tenant fast path — the
/// allocator degenerates to FIFO and no per-tenant metrics are emitted.
struct TenancyConfig {
  FairPolicy policy = FairPolicy::kFifo;
  std::vector<TenantSpec> tenants;

  bool multi_tenant() const { return !tenants.empty(); }
  /// Declared spec for `id`, or nullptr (undeclared ids share tenant 0's
  /// accounting bucket).
  const TenantSpec* find(TenantId id) const;
};

/// Credit-account snapshot of one tenant.
struct TenantCredit {
  std::int64_t balance = 0;       ///< current bank (may be negative: debt)
  std::int64_t banked_total = 0;  ///< lifetime credits earned
  std::int64_t spent_total = 0;   ///< lifetime credits spent borrowing
};

/// Cross-tenant admission arbiter. The scheduler consults it every admission
/// round: the allocator picks WHICH tenant goes next (delegating intra-tenant
/// ordering to the AdmissionPolicy), gates admissions on quotas/credits, and
/// observes admissions/releases to track per-tenant usage. Stateful — one
/// instance per scheduler, constructed via factory (Replica copies
/// Scheduler::Config per replica, so instances must never be shared).
class TenantAllocator {
 public:
  virtual ~TenantAllocator() = default;
  virtual const char* name() const = 0;

  /// Starts an admission round. `capacity_tokens` is the effective KV
  /// capacity (0 = unlimited), `external_reserved` the prefix-cache share of
  /// it. Credit banking/charging happens here, once per round.
  virtual void begin_round(std::int64_t capacity_tokens,
                           std::int64_t external_reserved) {
    (void)capacity_tokens;
    (void)external_reserved;
  }

  /// Next admission candidate across tenants (npos = none eligible). The
  /// default is tenant-blind: exactly the admission policy's own choice.
  virtual std::size_t select(const std::deque<Request>& queue,
                             const AdmissionPolicy& admission) const {
    return admission.select(queue);
  }

  /// Per-tenant admission gate (quota + credit checks) beyond the
  /// scheduler's global capacity check. `footprint` is the KV reservation
  /// the admission would take.
  virtual bool may_admit(const Request& req, std::int64_t footprint) const {
    (void)req;
    (void)footprint;
    return true;
  }

  /// When the chosen candidate does not fit: true = stop the whole round
  /// (FIFO head-of-line semantics); false = the scheduler sidelines that
  /// tenant via block_for_round and keeps admitting others
  /// (work-conserving).
  virtual bool head_of_line_blocking() const { return true; }
  /// Sideline `tenant` for the remainder of this round.
  virtual void block_for_round(TenantId tenant) { (void)tenant; }

  virtual void on_admit(const Request& req, std::int64_t footprint) {
    (void)req;
    (void)footprint;
  }
  /// A live request released its reservation (completion or cancel).
  virtual void on_release(const Request& req, std::int64_t footprint) {
    (void)req;
    (void)footprint;
  }

  virtual TenantCredit credits(TenantId tenant) const {
    (void)tenant;
    return {};
  }
  /// KV tokens currently reserved by `tenant`'s live requests.
  virtual std::int64_t usage_tokens(TenantId tenant) const {
    (void)tenant;
    return 0;
  }
  /// This round's weighted fair share of `tenant` (0 when unlimited).
  virtual std::int64_t fair_share_tokens(TenantId tenant) const {
    (void)tenant;
    return 0;
  }
};

/// Tenant-blind arrival order: all TenantAllocator defaults. Bitwise
/// identical to the pre-tenancy scheduler — the single-tenant pin.
class FifoTenantAllocator final : public TenantAllocator {
 public:
  const char* name() const override { return "fifo"; }
};

/// Shared per-tenant usage/quota bookkeeping for the tenant-aware policies.
class TenantTrackingAllocator : public TenantAllocator {
 public:
  explicit TenantTrackingAllocator(TenancyConfig cfg);

  bool may_admit(const Request& req, std::int64_t footprint) const override;
  /// Blocks the ACCOUNTING bucket, not the raw id: an undeclared tenant
  /// shares tenant 0's bucket, and select() skips by bucket — blocking the
  /// raw id would let the same candidate be re-selected forever.
  void block_for_round(TenantId tenant) override {
    blocked_.insert(bucket_id(tenant));
  }
  void on_admit(const Request& req, std::int64_t footprint) override;
  void on_release(const Request& req, std::int64_t footprint) override;
  TenantCredit credits(TenantId tenant) const override;
  std::int64_t usage_tokens(TenantId tenant) const override;
  std::int64_t fair_share_tokens(TenantId tenant) const override;

 protected:
  struct State {
    TenantSpec spec;
    std::int64_t usage = 0;  ///< KV tokens reserved by live requests
    std::int64_t slots = 0;  ///< live sequence count
    std::int64_t fair = 0;   ///< this round's fair share (kFairCredit only)
    TenantCredit credit;
  };

  /// Accounting bucket of a request's tenant (undeclared ids -> tenant 0).
  const State& bucket(TenantId tenant) const;
  State& bucket(TenantId tenant);
  TenantId bucket_id(TenantId tenant) const;

  TenancyConfig cfg_;
  std::map<TenantId, State> states_;  ///< ordered: deterministic iteration
  std::set<TenantId> blocked_;        ///< sidelined for the current round
  double weight_sum_ = 0.0;
};

/// Latency-bound tenants first, then throughput-bound; ties by tenant id.
/// Head-of-line blocking within the winning tenant, like FIFO.
class StrictPriorityAllocator final : public TenantTrackingAllocator {
 public:
  explicit StrictPriorityAllocator(TenancyConfig cfg)
      : TenantTrackingAllocator(std::move(cfg)) {}

  const char* name() const override { return "strict-priority"; }
  void begin_round(std::int64_t capacity_tokens,
                   std::int64_t external_reserved) override;
  std::size_t select(const std::deque<Request>& queue,
                     const AdmissionPolicy& admission) const override;
};

/// Karma-style credit allocator (NSDI '23). Every round each tenant's
/// weighted fair share of the usable pool is computed; tenants below their
/// share bank the gap as credits (capped by credit_cap), tenants above it
/// are charged the overage — so holding KV beyond the fair share
/// continuously drains the bank, and admission past the share requires a
/// balance covering the projected overage. Blocked tenants are sidelined
/// per-round rather than head-of-line blocking, which keeps the allocator
/// work-conserving across tenants.
class KarmaAllocator final : public TenantTrackingAllocator {
 public:
  explicit KarmaAllocator(TenancyConfig cfg);

  const char* name() const override { return "fair-credit"; }
  void begin_round(std::int64_t capacity_tokens,
                   std::int64_t external_reserved) override;
  std::size_t select(const std::deque<Request>& queue,
                     const AdmissionPolicy& admission) const override;
  bool may_admit(const Request& req, std::int64_t footprint) const override;
  bool head_of_line_blocking() const override { return false; }
};

/// Factory: constructs a fresh allocator instance per scheduler.
using AllocatorFactory = std::function<std::unique_ptr<TenantAllocator>()>;

/// The enum shim: maps TenancyConfig onto the allocator objects. An empty
/// tenant list always yields the FIFO allocator (single-tenant fast path).
std::unique_ptr<TenantAllocator> make_tenant_allocator(
    const TenancyConfig& tenancy);

}  // namespace llmib::sched
