#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sched/policy.h"
#include "sched/tenant.h"
#include "sched/types.h"

namespace llmib::sched {

/// Iteration-level scheduler shared by the analytical simulator and the
/// mini engine. Tracks KV-token occupancy so that admission respects device
/// memory: a request is admitted only if its full footprint
/// (prompt + max_new_tokens) fits in the remaining KV capacity — the
/// conservative reservation TRT-LLM-style engines make, which produces the
/// "wave" behavior on capacity-squeezed devices (A100-40GB with 70B models).
///
/// Admission is composed from three policy objects (sched/policy.h,
/// sched/tenant.h): a KvBudget (capacity model), an AdmissionPolicy
/// (intra-tenant ordering + aging) and a TenantAllocator (cross-tenant
/// arbitration, quotas, credits). The legacy Config enums remain as thin
/// factory shims, so a default config is bitwise identical to the
/// pre-policy-object scheduler.
class Scheduler {
 public:
  struct Config {
    BatchPolicy policy = BatchPolicy::kContinuous;
    std::int64_t max_batch = 64;  ///< max concurrent sequences

    // -- Deprecated capacity aliases ---------------------------------------
    /// Pre-KvBudget fields, kept so every existing call site compiles: when
    /// any is set (and `kv` is default) the scheduler builds the KvBudget
    /// from them, with the historical precedence (bytes override tokens).
    /// Setting both these and `kv` throws. New code should set `kv`.
    std::int64_t kv_capacity_tokens = 0;  ///< 0 => unlimited
    std::int64_t kv_capacity_bytes = 0;   ///< > 0 => byte-denominated pool
    std::int64_t kv_bytes_per_token = 0;  ///< required with kv_capacity_bytes

    /// Unified KV-capacity model (preferred API). After construction the
    /// scheduler keeps the deprecated fields above mirrored from this, so
    /// config() readers of either form stay truthful.
    KvBudget kv;

    /// Fraction of max_new_tokens reserved at admission. 1.0 models
    /// TRT-LLM-style conservative reservation; vLLM-style optimistic
    /// admission (~0.25) achieves higher steady-state concurrency by
    /// relying on preemption for the rare overflow.
    double reservation_frac = 1.0;

    // -- Admission ordering (enum shim + factory override) ------------------
    QueueOrder order = QueueOrder::kFcfs;
    /// Starvation mitigation for kShortestFirst: each planning round a
    /// waiting request's effective work shrinks by this many tokens, so a
    /// long request eventually outranks the stream of short ones that
    /// would otherwise starve it forever. 0 (default) = pure SJF.
    std::int64_t sjf_aging_tokens_per_round = 0;
    /// Custom admission policy; overrides the (order, aging) shim when set.
    /// A FACTORY, not an instance: policies are stateful and every
    /// Scheduler (each cluster replica copies this Config) needs its own.
    AdmissionFactory admission;

    // -- Tenancy (enum shim + factory override) -----------------------------
    /// Cross-tenant arbitration + declared tenants. Empty tenant list =
    /// single-tenant fast path (FIFO allocator, zero overhead).
    TenancyConfig tenancy;
    /// Custom tenant allocator; overrides the tenancy.policy shim when set.
    AllocatorFactory allocator;
  };

  explicit Scheduler(Config cfg);

  const Config& config() const { return cfg_; }
  /// The live policy objects (introspection: metrics, tests).
  const AdmissionPolicy& admission() const { return *admission_; }
  const TenantAllocator& tenant_allocator() const { return *allocator_; }
  const KvBudget& kv_budget() const { return cfg_.kv; }

  /// Enqueue a request. Throws on duplicate id or non-positive sizes.
  void submit(const Request& req);

  /// Admit what fits, then return this iteration's work. Newly admitted
  /// requests appear in `prefills` exactly once; they join `decodes` from
  /// the next plan onwards.
  StepPlan plan_step();

  /// Record that one decode token was produced for `id`. When the request
  /// reaches its max_new_tokens it retires and frees its KV reservation.
  /// Returns true if the request is now done. Throws if `id` is not live.
  bool complete_decode_token(RequestId id);

  /// Remove a request wherever it is (waiting queue or live set), freeing
  /// its KV reservation. The id becomes reusable. Returns false if the
  /// scheduler does not know the id. This is how the resilience layer
  /// expresses deadline timeouts and fault-killed sequences.
  bool cancel(RequestId id);

  /// Whether `id` is currently admitted (holds KV), as opposed to waiting.
  bool is_live(RequestId id) const { return live_.find(id) != live_.end(); }

  /// Change the concurrency cap mid-run (graceful degradation). Shrinking
  /// below the current live count only pauses admission — live sequences
  /// are never evicted by this.
  void set_max_batch(std::int64_t max_batch);

  /// Change the KV bytes-per-token mid-run (mid-generation quantization
  /// switch during degradation). Only meaningful with a byte-denominated
  /// budget; live reservations stay token-denominated, so shrinking
  /// bytes-per-token immediately widens the effective token capacity and
  /// unblocks admission without touching live sequences.
  void set_kv_bytes_per_token(std::int64_t bytes);
  std::int64_t kv_bytes_per_token() const { return cfg_.kv_bytes_per_token; }

  /// Token capacity admission actually checks against: bytes / per-token
  /// bytes when byte-denominated, else the token budget (0 = unlimited).
  std::int64_t effective_kv_capacity_tokens() const;

  /// Tokens of KV held outside the scheduler's own reservations — the
  /// prefix cache's resident entries, charged ONCE here no matter how many
  /// live requests borrow them (they are ref-counted blocks, not copies).
  /// Admission treats them as occupied capacity.
  void set_external_reserved_tokens(std::int64_t tokens);
  std::int64_t external_reserved_tokens() const { return external_reserved_; }

  /// Footprint the next admission candidate would reserve (0 if the queue is
  /// empty). Lets the owner decide whether shrinking the external
  /// reservation (evicting cache entries) would unblock admission.
  std::int64_t next_waiting_footprint() const;

  /// Number of tokens of KV the live set currently reserves.
  std::int64_t reserved_kv_tokens() const { return reserved_tokens_; }
  /// Live (admitted, unfinished) sequence count.
  std::int64_t live_sequences() const { return static_cast<std::int64_t>(live_.size()); }
  std::int64_t waiting_requests() const { return static_cast<std::int64_t>(queue_.size()); }
  bool all_done() const { return queue_.empty() && live_.empty(); }

  /// Context length (prompt + generated so far) of a live request.
  std::int64_t context_length(RequestId id) const;
  /// Tokens generated so far for a live request.
  std::int64_t generated_tokens(RequestId id) const;

  /// Total waves formed so far (a wave boundary is an admission that
  /// happens when the live set was empty). Static batching on an
  /// over-subscribed device shows > 1.
  std::int64_t waves() const { return waves_; }

 private:
  struct Live {
    Request req;
    std::int64_t generated = 0;
    Phase phase = Phase::kNeedsPrefill;
  };

  bool can_admit(const Request& req) const;
  void admit_from_queue();
  std::int64_t footprint(const Request& req) const;
  void sync_legacy_kv_fields();

  Config cfg_;
  std::unique_ptr<AdmissionPolicy> admission_;
  std::unique_ptr<TenantAllocator> allocator_;
  std::deque<Request> queue_;
  /// Ids currently in queue_, kept in sync on submit/admit so duplicate
  /// detection is O(1) instead of a linear queue scan per submit.
  std::unordered_set<RequestId> queued_ids_;
  std::map<RequestId, Live> live_;
  std::int64_t reserved_tokens_ = 0;
  std::int64_t external_reserved_ = 0;
  std::int64_t waves_ = 0;
};

}  // namespace llmib::sched
