#include "sched/scheduler.h"

#include "obs/obs.h"
#include "util/check.h"

namespace llmib::sched {

using util::require;

namespace {
// Registry handles are resolved once and cached; add() is lock-free.
obs::Counter& submitted_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.submitted");
  return c;
}
obs::Counter& admitted_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.admitted");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.completed");
  return c;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.cancelled");
  return c;
}
obs::Counter& plan_steps_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.plan_steps");
  return c;
}
}  // namespace

Scheduler::Scheduler(Config cfg) : cfg_(cfg) {
  require(cfg.max_batch > 0, "Scheduler: max_batch must be positive");
  require(cfg.kv_capacity_tokens >= 0, "Scheduler: negative kv capacity");
  require(cfg.kv_capacity_bytes >= 0, "Scheduler: negative kv byte capacity");
  require(cfg.kv_capacity_bytes == 0 || cfg.kv_bytes_per_token > 0,
          "Scheduler: kv_capacity_bytes requires kv_bytes_per_token > 0");
  require(cfg.reservation_frac > 0.0 && cfg.reservation_frac <= 1.0,
          "Scheduler: reservation_frac must be in (0, 1]");
  require(cfg.sjf_aging_tokens_per_round >= 0,
          "Scheduler: negative SJF aging rate");
}

void Scheduler::set_max_batch(std::int64_t max_batch) {
  require(max_batch > 0, "Scheduler: max_batch must be positive");
  cfg_.max_batch = max_batch;
}

void Scheduler::set_kv_bytes_per_token(std::int64_t bytes) {
  require(bytes > 0, "Scheduler: kv_bytes_per_token must be positive");
  cfg_.kv_bytes_per_token = bytes;
}

std::int64_t Scheduler::effective_kv_capacity_tokens() const {
  if (cfg_.kv_capacity_bytes > 0)
    return cfg_.kv_capacity_bytes / cfg_.kv_bytes_per_token;
  return cfg_.kv_capacity_tokens;
}

std::int64_t Scheduler::footprint(const Request& req) const {
  const auto reserved_new = static_cast<std::int64_t>(
      cfg_.reservation_frac * static_cast<double>(req.max_new_tokens) + 0.999);
  // Cached-prefix tokens live in ref-counted blocks the prefix cache already
  // charges once via the external reservation; only the private remainder of
  // the prompt counts against this request.
  return req.prompt_tokens - req.cached_prefix_tokens +
         std::max<std::int64_t>(1, reserved_new);
}

void Scheduler::submit(const Request& req) {
  require(req.prompt_tokens > 0, "Scheduler: prompt must be non-empty");
  require(req.max_new_tokens > 0, "Scheduler: max_new_tokens must be positive");
  require(req.cached_prefix_tokens >= 0 &&
              req.cached_prefix_tokens < req.prompt_tokens,
          "Scheduler: cached prefix must satisfy 0 <= cached < prompt");
  require(live_.find(req.id) == live_.end(), "Scheduler: duplicate request id");
  require(queued_ids_.find(req.id) == queued_ids_.end(),
          "Scheduler: duplicate request id");
  if (const std::int64_t cap = effective_kv_capacity_tokens(); cap > 0) {
    require(req.prompt_tokens - req.cached_prefix_tokens + req.max_new_tokens <=
                cap,
            "Scheduler: request can never fit in KV capacity");
  }
  queue_.push_back(Queued{req, 0});
  queued_ids_.insert(req.id);
  submitted_counter().add(1);
}

void Scheduler::set_external_reserved_tokens(std::int64_t tokens) {
  require(tokens >= 0, "Scheduler: negative external reservation");
  external_reserved_ = tokens;
}

std::int64_t Scheduler::next_waiting_footprint() const {
  if (queue_.empty()) return 0;
  return footprint(next_candidate()->req);
}

bool Scheduler::cancel(RequestId id) {
  if (queued_ids_.erase(id) > 0) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->req.id == id) {
        queue_.erase(it);
        return true;
      }
    }
    require(false, "Scheduler: queued_ids_ out of sync with queue_");
  }
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  reserved_tokens_ -= footprint(it->second.req);
  live_.erase(it);
  cancelled_counter().add(1);
  return true;
}

bool Scheduler::can_admit(const Request& req) const {
  if (static_cast<std::int64_t>(live_.size()) >= cfg_.max_batch) return false;
  const std::int64_t cap = effective_kv_capacity_tokens();
  if (cap > 0 &&
      reserved_tokens_ + external_reserved_ + footprint(req) > cap) {
    return false;
  }
  return true;
}

auto Scheduler::next_candidate() const -> std::deque<Queued>::const_iterator {
  auto candidate = queue_.begin();
  if (cfg_.order == QueueOrder::kShortestFirst) {
    // Effective work = total tokens minus an aging credit, so a starved
    // long request eventually wins over fresh short ones. Ties keep
    // queue (arrival) order via strict less-than.
    const auto rank = [&](const Queued& q) {
      return q.req.prompt_tokens + q.req.max_new_tokens -
             q.rounds_waiting * cfg_.sjf_aging_tokens_per_round;
    };
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (rank(*it) < rank(*candidate)) candidate = it;
    }
  }
  return candidate;
}

void Scheduler::admit_from_queue() {
  if (cfg_.policy == BatchPolicy::kStatic && !live_.empty()) return;
  // One planning round of waiting ages every queued request (SJF aging).
  if (cfg_.order == QueueOrder::kShortestFirst &&
      cfg_.sjf_aging_tokens_per_round > 0) {
    for (auto& q : queue_) ++q.rounds_waiting;
  }
  const bool starting_wave = live_.empty() && !queue_.empty();
  bool admitted_any = false;
  for (;;) {
    if (queue_.empty()) break;
    auto candidate = next_candidate();
    if (!can_admit(candidate->req)) break;
    Request req = candidate->req;
    queue_.erase(candidate);
    queued_ids_.erase(req.id);
    reserved_tokens_ += footprint(req);
    live_.emplace(req.id, Live{req, 0, Phase::kNeedsPrefill});
    admitted_any = true;
    admitted_counter().add(1);
  }
  if (starting_wave && admitted_any) ++waves_;
}

StepPlan Scheduler::plan_step() {
  obs::Span span("sched.plan", obs::Cat::kSched);
  plan_steps_counter().add(1);
  admit_from_queue();
  StepPlan plan;
  for (auto& [id, live] : live_) {
    if (live.phase == Phase::kNeedsPrefill) {
      plan.prefills.push_back(id);
      live.phase = Phase::kDecoding;
    } else if (live.phase == Phase::kDecoding) {
      plan.decodes.push_back(id);
    }
  }
  return plan;
}

bool Scheduler::complete_decode_token(RequestId id) {
  auto it = live_.find(id);
  require(it != live_.end(), "Scheduler: unknown live request");
  Live& live = it->second;
  require(live.phase == Phase::kDecoding, "Scheduler: request not decoding");
  ++live.generated;
  if (live.generated >= live.req.max_new_tokens) {
    reserved_tokens_ -= footprint(live.req);
    live_.erase(it);
    completed_counter().add(1);
    return true;
  }
  return false;
}

std::int64_t Scheduler::context_length(RequestId id) const {
  auto it = live_.find(id);
  require(it != live_.end(), "Scheduler: unknown live request");
  return it->second.req.prompt_tokens + it->second.generated;
}

std::int64_t Scheduler::generated_tokens(RequestId id) const {
  auto it = live_.find(id);
  require(it != live_.end(), "Scheduler: unknown live request");
  return it->second.generated;
}

}  // namespace llmib::sched
