#include "sched/scheduler.h"

#include "obs/obs.h"
#include "util/check.h"

namespace llmib::sched {

using util::require;

namespace {
// Registry handles are resolved once and cached; add() is lock-free.
obs::Counter& submitted_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.submitted");
  return c;
}
obs::Counter& admitted_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.admitted");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.completed");
  return c;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.cancelled");
  return c;
}
obs::Counter& plan_steps_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sched.plan_steps");
  return c;
}
}  // namespace

Scheduler::Scheduler(Config cfg) : cfg_(std::move(cfg)) {
  require(cfg_.max_batch > 0, "Scheduler: max_batch must be positive");
  require(cfg_.kv_capacity_tokens >= 0, "Scheduler: negative kv capacity");
  require(cfg_.kv_capacity_bytes >= 0, "Scheduler: negative kv byte capacity");
  require(cfg_.kv_capacity_bytes == 0 || cfg_.kv_bytes_per_token > 0,
          "Scheduler: kv_capacity_bytes requires kv_bytes_per_token > 0");
  // Resolve the capacity model: the deprecated aliases populate the KvBudget
  // with the historical precedence (bytes override tokens); mixing them with
  // an explicit budget is ambiguous and throws.
  if (cfg_.kv_capacity_tokens > 0 || cfg_.kv_capacity_bytes > 0) {
    require(cfg_.kv.is_unlimited(),
            "Scheduler: set Config::kv or the deprecated kv_capacity_* "
            "fields, not both");
    cfg_.kv = cfg_.kv_capacity_bytes > 0
                  ? KvBudget::bytes(cfg_.kv_capacity_bytes,
                                    cfg_.kv_bytes_per_token)
                  : KvBudget::tokens(cfg_.kv_capacity_tokens);
  }
  sync_legacy_kv_fields();
  require(cfg_.reservation_frac > 0.0 && cfg_.reservation_frac <= 1.0,
          "Scheduler: reservation_frac must be in (0, 1]");
  require(cfg_.sjf_aging_tokens_per_round >= 0,
          "Scheduler: negative SJF aging rate");
  admission_ = cfg_.admission
                   ? cfg_.admission()
                   : make_admission_policy(cfg_.order,
                                           cfg_.sjf_aging_tokens_per_round);
  require(admission_ != nullptr, "Scheduler: admission factory returned null");
  allocator_ =
      cfg_.allocator ? cfg_.allocator() : make_tenant_allocator(cfg_.tenancy);
  require(allocator_ != nullptr, "Scheduler: allocator factory returned null");
}

void Scheduler::sync_legacy_kv_fields() {
  // config() readers of the pre-KvBudget fields must keep seeing truthful
  // values whichever form the capacity was configured in.
  cfg_.kv_capacity_bytes = cfg_.kv.capacity_bytes();
  cfg_.kv_bytes_per_token = cfg_.kv.bytes_per_token();
  if (!cfg_.kv.byte_denominated()) {
    cfg_.kv_capacity_tokens = cfg_.kv.effective_tokens();
  }
}

void Scheduler::set_max_batch(std::int64_t max_batch) {
  require(max_batch > 0, "Scheduler: max_batch must be positive");
  cfg_.max_batch = max_batch;
}

void Scheduler::set_kv_bytes_per_token(std::int64_t bytes) {
  require(bytes > 0, "Scheduler: kv_bytes_per_token must be positive");
  if (cfg_.kv.byte_denominated()) cfg_.kv.set_bytes_per_token(bytes);
  cfg_.kv_bytes_per_token = bytes;
}

std::int64_t Scheduler::effective_kv_capacity_tokens() const {
  return cfg_.kv.effective_tokens();
}

std::int64_t Scheduler::footprint(const Request& req) const {
  const auto reserved_new = static_cast<std::int64_t>(
      cfg_.reservation_frac * static_cast<double>(req.max_new_tokens) + 0.999);
  // Cached-prefix tokens live in ref-counted blocks the prefix cache already
  // charges once via the external reservation; only the private remainder of
  // the prompt counts against this request.
  return req.prompt_tokens - req.cached_prefix_tokens +
         std::max<std::int64_t>(1, reserved_new);
}

void Scheduler::submit(const Request& req) {
  require(req.prompt_tokens > 0, "Scheduler: prompt must be non-empty");
  require(req.max_new_tokens > 0, "Scheduler: max_new_tokens must be positive");
  require(req.cached_prefix_tokens >= 0 &&
              req.cached_prefix_tokens < req.prompt_tokens,
          "Scheduler: cached prefix must satisfy 0 <= cached < prompt");
  require(req.tenant >= 0, "Scheduler: negative tenant id");
  require(live_.find(req.id) == live_.end(), "Scheduler: duplicate request id");
  require(queued_ids_.find(req.id) == queued_ids_.end(),
          "Scheduler: duplicate request id");
  if (const std::int64_t cap = effective_kv_capacity_tokens(); cap > 0) {
    require(req.prompt_tokens - req.cached_prefix_tokens + req.max_new_tokens <=
                cap,
            "Scheduler: request can never fit in KV capacity");
  }
  queue_.push_back(req);
  queued_ids_.insert(req.id);
  submitted_counter().add(1);
}

void Scheduler::set_external_reserved_tokens(std::int64_t tokens) {
  require(tokens >= 0, "Scheduler: negative external reservation");
  external_reserved_ = tokens;
}

std::int64_t Scheduler::next_waiting_footprint() const {
  if (queue_.empty()) return 0;
  // Allocator-independent preview: ordering only, so the prefix-cache
  // eviction heuristic sees the same candidate the pre-tenancy code did.
  const std::size_t idx = admission_->select(queue_);
  return idx == AdmissionPolicy::npos ? 0 : footprint(queue_[idx]);
}

bool Scheduler::cancel(RequestId id) {
  if (queued_ids_.erase(id) > 0) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->id == id) {
        queue_.erase(it);
        // Sweep the admission policy's per-request state (the SJF aging
        // map): a cancelled waiting request must not leave an aged-work
        // entry behind for a future reuse of its id to inherit.
        admission_->on_remove(id);
        return true;
      }
    }
    require(false, "Scheduler: queued_ids_ out of sync with queue_");
  }
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  const std::int64_t fp = footprint(it->second.req);
  reserved_tokens_ -= fp;
  allocator_->on_release(it->second.req, fp);
  live_.erase(it);
  cancelled_counter().add(1);
  return true;
}

bool Scheduler::can_admit(const Request& req) const {
  if (static_cast<std::int64_t>(live_.size()) >= cfg_.max_batch) return false;
  const std::int64_t cap = effective_kv_capacity_tokens();
  if (cap > 0 &&
      reserved_tokens_ + external_reserved_ + footprint(req) > cap) {
    return false;
  }
  return true;
}

void Scheduler::admit_from_queue() {
  if (cfg_.policy == BatchPolicy::kStatic && !live_.empty()) return;
  // One planning round of waiting ages every queued request (SJF aging),
  // and the allocator settles per-tenant credits for the round.
  admission_->on_planning_round(queue_);
  allocator_->begin_round(effective_kv_capacity_tokens(), external_reserved_);
  const bool starting_wave = live_.empty() && !queue_.empty();
  bool admitted_any = false;
  for (;;) {
    if (queue_.empty()) break;
    if (static_cast<std::int64_t>(live_.size()) >= cfg_.max_batch) break;
    const std::size_t idx = allocator_->select(queue_, *admission_);
    if (idx == AdmissionPolicy::npos) break;
    const Request& cand = queue_[idx];
    if (!can_admit(cand) || !allocator_->may_admit(cand, footprint(cand))) {
      // FIFO semantics stop the whole round at the first non-fitting
      // candidate (head-of-line blocking); tenant-aware allocators instead
      // sideline the blocked tenant and keep the round work-conserving.
      if (allocator_->head_of_line_blocking()) break;
      allocator_->block_for_round(cand.tenant);
      continue;
    }
    const Request req = cand;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
    queued_ids_.erase(req.id);
    admission_->on_remove(req.id);
    const std::int64_t fp = footprint(req);
    reserved_tokens_ += fp;
    allocator_->on_admit(req, fp);
    live_.emplace(req.id, Live{req, 0, Phase::kNeedsPrefill});
    admitted_any = true;
    admitted_counter().add(1);
  }
  if (starting_wave && admitted_any) ++waves_;
}

StepPlan Scheduler::plan_step() {
  obs::Span span("sched.plan", obs::Cat::kSched);
  plan_steps_counter().add(1);
  admit_from_queue();
  StepPlan plan;
  for (auto& [id, live] : live_) {
    if (live.phase == Phase::kNeedsPrefill) {
      plan.prefills.push_back(id);
      live.phase = Phase::kDecoding;
    } else if (live.phase == Phase::kDecoding) {
      plan.decodes.push_back(id);
    }
  }
  return plan;
}

bool Scheduler::complete_decode_token(RequestId id) {
  auto it = live_.find(id);
  require(it != live_.end(), "Scheduler: unknown live request");
  Live& live = it->second;
  require(live.phase == Phase::kDecoding, "Scheduler: request not decoding");
  ++live.generated;
  if (live.generated >= live.req.max_new_tokens) {
    const std::int64_t fp = footprint(live.req);
    reserved_tokens_ -= fp;
    allocator_->on_release(live.req, fp);
    live_.erase(it);
    completed_counter().add(1);
    return true;
  }
  return false;
}

std::int64_t Scheduler::context_length(RequestId id) const {
  auto it = live_.find(id);
  require(it != live_.end(), "Scheduler: unknown live request");
  return it->second.req.prompt_tokens + it->second.generated;
}

std::int64_t Scheduler::generated_tokens(RequestId id) const {
  auto it = live_.find(id);
  require(it != live_.end(), "Scheduler: unknown live request");
  return it->second.generated;
}

}  // namespace llmib::sched
