#pragma once

#include <cstdint>
#include <vector>

namespace llmib::sched {

using RequestId = std::uint64_t;

/// Identifies the tenant a request belongs to. Tenant 0 is the implicit
/// default tenant: requests that never set the field, and requests naming a
/// tenant the scheduler's TenancyConfig does not declare, are accounted
/// against it.
using TenantId = std::int32_t;

/// One inference request: a prompt and a generation budget.
struct Request {
  RequestId id = 0;
  std::int64_t prompt_tokens = 0;
  std::int64_t max_new_tokens = 0;
  double arrival_time_s = 0.0;
  /// Tokens of the prompt already resident in a shared prefix-cache entry
  /// (ref-counted blocks charged once, externally via
  /// set_external_reserved_tokens). Admission discounts them from this
  /// request's private KV footprint. Must satisfy 0 <= cached < prompt.
  std::int64_t cached_prefix_tokens = 0;
  /// Owning tenant (quota/credit accounting). Default 0 keeps every
  /// pre-tenancy call site compiling and behaving identically.
  TenantId tenant = 0;
};

/// Lifecycle of a request inside the scheduler.
enum class Phase { kWaiting, kNeedsPrefill, kDecoding, kDone };

/// Admission ordering for waiting requests.
enum class QueueOrder {
  kFcfs,           ///< first-come first-served (production default)
  kShortestFirst,  ///< shortest total work first (SJF): better mean latency,
                   ///< risks starving long requests under sustained load
};

/// Batching discipline (paper §IV-A.1).
enum class BatchPolicy {
  /// Whole batch admitted together; next wave starts only after every
  /// sequence in the current wave finishes.
  kStatic,
  /// Orca-style continuous batching: free slots are refilled every
  /// iteration as sequences complete.
  kContinuous,
};

/// What the engine/simulator should run this iteration.
struct StepPlan {
  std::vector<RequestId> prefills;  ///< newly admitted; run their prompt
  std::vector<RequestId> decodes;   ///< live sequences; generate one token
  bool empty() const { return prefills.empty() && decodes.empty(); }
};

}  // namespace llmib::sched
