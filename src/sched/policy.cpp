#include "sched/policy.h"

#include "util/check.h"

namespace llmib::sched {

using util::require;

// ---- KvBudget ---------------------------------------------------------------

KvBudget KvBudget::tokens(std::int64_t capacity_tokens) {
  require(capacity_tokens >= 0, "KvBudget: negative kv capacity");
  KvBudget b;
  b.capacity_tokens_ = capacity_tokens;
  return b;
}

KvBudget KvBudget::bytes(std::int64_t capacity_bytes,
                         std::int64_t bytes_per_token) {
  require(capacity_bytes >= 0, "KvBudget: negative kv byte capacity");
  require(capacity_bytes == 0 || bytes_per_token > 0,
          "KvBudget: byte capacity requires bytes_per_token > 0");
  KvBudget b;
  b.capacity_bytes_ = capacity_bytes;
  b.bytes_per_token_ = capacity_bytes > 0 ? bytes_per_token : 0;
  return b;
}

void KvBudget::set_bytes_per_token(std::int64_t bytes) {
  require(bytes > 0, "KvBudget: bytes_per_token must be positive");
  require(byte_denominated(),
          "KvBudget: set_bytes_per_token needs a byte-denominated budget");
  bytes_per_token_ = bytes;
}

// ---- FcfsAdmissionPolicy ----------------------------------------------------

std::size_t FcfsAdmissionPolicy::select(const std::deque<Request>& queue,
                                        const Eligible& eligible) const {
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (!eligible || eligible(queue[i])) return i;
  }
  return npos;
}

// ---- SjfAdmissionPolicy -----------------------------------------------------

SjfAdmissionPolicy::SjfAdmissionPolicy(std::int64_t aging_tokens_per_round)
    : aging_(aging_tokens_per_round) {
  require(aging_ >= 0, "Scheduler: negative SJF aging rate");
}

void SjfAdmissionPolicy::on_planning_round(const std::deque<Request>& queue) {
  if (aging_ == 0) return;
  for (const Request& r : queue) ++rounds_[r.id];
}

void SjfAdmissionPolicy::on_remove(RequestId id) { rounds_.erase(id); }

std::int64_t SjfAdmissionPolicy::aged_rounds(RequestId id) const {
  const auto it = rounds_.find(id);
  return it == rounds_.end() ? 0 : it->second;
}

std::size_t SjfAdmissionPolicy::select(const std::deque<Request>& queue,
                                       const Eligible& eligible) const {
  // Effective work = total tokens minus an aging credit. Ties keep queue
  // (arrival) order via strict less-than — the exact pre-refactor scan.
  const auto rank = [&](const Request& r) {
    return r.prompt_tokens + r.max_new_tokens - aged_rounds(r.id) * aging_;
  };
  std::size_t best = npos;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (eligible && !eligible(queue[i])) continue;
    if (best == npos || rank(queue[i]) < rank(queue[best])) best = i;
  }
  return best;
}

// ---- Enum shim --------------------------------------------------------------

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    QueueOrder order, std::int64_t sjf_aging_tokens_per_round) {
  if (order == QueueOrder::kShortestFirst) {
    return std::make_unique<SjfAdmissionPolicy>(sjf_aging_tokens_per_round);
  }
  require(sjf_aging_tokens_per_round >= 0, "Scheduler: negative SJF aging rate");
  return std::make_unique<FcfsAdmissionPolicy>();
}

}  // namespace llmib::sched
