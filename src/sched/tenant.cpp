#include "sched/tenant.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace llmib::sched {

using util::require;

const char* slo_class_name(SloClass c) {
  switch (c) {
    case SloClass::kLatencyBound:
      return "latency";
    case SloClass::kThroughputBound:
      return "throughput";
  }
  return "?";
}

const char* fair_policy_name(FairPolicy p) {
  switch (p) {
    case FairPolicy::kFifo:
      return "fifo";
    case FairPolicy::kStrictPriority:
      return "strict-priority";
    case FairPolicy::kFairCredit:
      return "fair-credit";
  }
  return "?";
}

bool parse_fair_policy(const std::string& name, FairPolicy* out) {
  if (name == "fifo") {
    *out = FairPolicy::kFifo;
  } else if (name == "priority" || name == "strict" ||
             name == "strict-priority") {
    *out = FairPolicy::kStrictPriority;
  } else if (name == "credit" || name == "fair-credit" || name == "karma") {
    *out = FairPolicy::kFairCredit;
  } else {
    return false;
  }
  return true;
}

const TenantSpec* TenancyConfig::find(TenantId id) const {
  for (const TenantSpec& t : tenants) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

// ---- TenantTrackingAllocator ------------------------------------------------

TenantTrackingAllocator::TenantTrackingAllocator(TenancyConfig cfg)
    : cfg_(std::move(cfg)) {
  require(!cfg_.tenants.empty(),
          "TenantAllocator: tenant-aware policy needs declared tenants");
  for (const TenantSpec& t : cfg_.tenants) {
    require(t.id >= 0, "TenantAllocator: negative tenant id");
    require(t.weight > 0, "TenantAllocator: tenant weight must be positive");
    require(t.kv_quota_tokens >= 0 && t.slot_quota >= 0,
            "TenantAllocator: negative tenant quota");
    require(t.credit_init >= 0 && t.credit_cap >= 0,
            "TenantAllocator: negative tenant credit");
    require(t.credit_cap == 0 || t.credit_init <= t.credit_cap,
            "TenantAllocator: credit_init exceeds credit_cap");
    require(t.slo_ttft_s >= 0 && t.slo_e2e_s >= 0,
            "TenantAllocator: negative tenant SLO");
    require(states_.find(t.id) == states_.end(),
            "TenantAllocator: duplicate tenant id");
    State st;
    st.spec = t;
    st.credit.balance = t.credit_init;
    states_.emplace(t.id, std::move(st));
    weight_sum_ += t.weight;
  }
}

TenantId TenantTrackingAllocator::bucket_id(TenantId tenant) const {
  if (states_.find(tenant) != states_.end()) return tenant;
  // Undeclared ids share the lowest declared tenant's accounting bucket.
  return states_.begin()->first;
}

const TenantTrackingAllocator::State& TenantTrackingAllocator::bucket(
    TenantId tenant) const {
  return states_.at(bucket_id(tenant));
}

TenantTrackingAllocator::State& TenantTrackingAllocator::bucket(
    TenantId tenant) {
  return states_.at(bucket_id(tenant));
}

bool TenantTrackingAllocator::may_admit(const Request& req,
                                        std::int64_t footprint) const {
  const State& st = bucket(req.tenant);
  if (st.spec.kv_quota_tokens > 0 &&
      st.usage + footprint > st.spec.kv_quota_tokens) {
    return false;
  }
  if (st.spec.slot_quota > 0 && st.slots >= st.spec.slot_quota) return false;
  return true;
}

void TenantTrackingAllocator::on_admit(const Request& req,
                                       std::int64_t footprint) {
  State& st = bucket(req.tenant);
  st.usage += footprint;
  ++st.slots;
}

void TenantTrackingAllocator::on_release(const Request& req,
                                         std::int64_t footprint) {
  State& st = bucket(req.tenant);
  st.usage -= footprint;
  --st.slots;
  require(st.usage >= 0 && st.slots >= 0,
          "TenantAllocator: tenant usage accounting went negative");
}

TenantCredit TenantTrackingAllocator::credits(TenantId tenant) const {
  const auto it = states_.find(tenant);
  return it == states_.end() ? TenantCredit{} : it->second.credit;
}

std::int64_t TenantTrackingAllocator::usage_tokens(TenantId tenant) const {
  const auto it = states_.find(tenant);
  return it == states_.end() ? 0 : it->second.usage;
}

std::int64_t TenantTrackingAllocator::fair_share_tokens(TenantId tenant) const {
  const auto it = states_.find(tenant);
  return it == states_.end() ? 0 : it->second.fair;
}

// ---- StrictPriorityAllocator ------------------------------------------------

void StrictPriorityAllocator::begin_round(std::int64_t capacity_tokens,
                                          std::int64_t external_reserved) {
  (void)capacity_tokens;
  (void)external_reserved;
  blocked_.clear();
}

std::size_t StrictPriorityAllocator::select(
    const std::deque<Request>& queue, const AdmissionPolicy& admission) const {
  std::set<TenantId> present;
  for (const Request& r : queue) present.insert(bucket_id(r.tenant));
  // Lowest (class, id) wins: latency-bound before throughput-bound, ties by
  // tenant id. states_ is id-ordered, so a strict less-than keeps lower ids.
  bool have = false;
  int best_class = 0;
  TenantId chosen = 0;
  for (const auto& [id, st] : states_) {
    if (present.find(id) == present.end() ||
        blocked_.find(id) != blocked_.end()) {
      continue;
    }
    const int cls = st.spec.slo == SloClass::kLatencyBound ? 0 : 1;
    if (!have || cls < best_class) {
      have = true;
      best_class = cls;
      chosen = id;
    }
  }
  if (!have) return AdmissionPolicy::npos;
  return admission.select(queue, [this, chosen](const Request& r) {
    return bucket_id(r.tenant) == chosen;
  });
}

// ---- KarmaAllocator ---------------------------------------------------------

KarmaAllocator::KarmaAllocator(TenancyConfig cfg)
    : TenantTrackingAllocator(std::move(cfg)) {}

void KarmaAllocator::begin_round(std::int64_t capacity_tokens,
                                 std::int64_t external_reserved) {
  blocked_.clear();
  const std::int64_t usable =
      capacity_tokens > 0
          ? std::max<std::int64_t>(0, capacity_tokens - external_reserved)
          : 0;
  for (auto& [id, st] : states_) {
    st.fair = usable > 0
                  ? static_cast<std::int64_t>(static_cast<double>(usable) *
                                              st.spec.weight / weight_sum_)
                  : 0;
    if (usable <= 0) continue;  // unlimited pool: no credit flow
    if (st.usage < st.fair) {
      // One round of unused fair share banks one credit per token.
      std::int64_t bank = st.fair - st.usage;
      if (st.spec.credit_cap > 0) {
        bank = std::min(bank, std::max<std::int64_t>(
                                  0, st.spec.credit_cap - st.credit.balance));
      }
      st.credit.balance += bank;
      st.credit.banked_total += bank;
    } else if (st.usage > st.fair) {
      // Holding KV beyond the fair share drains the bank every round; the
      // balance may go negative (debt) if usage was admitted while cheaper.
      const std::int64_t charge = st.usage - st.fair;
      st.credit.balance -= charge;
      st.credit.spent_total += charge;
    }
  }
}

std::size_t KarmaAllocator::select(const std::deque<Request>& queue,
                                   const AdmissionPolicy& admission) const {
  std::set<TenantId> present;
  for (const Request& r : queue) present.insert(bucket_id(r.tenant));
  // Weighted max-min: serve the tenant with the smallest normalized usage
  // (usage / fair share; usage / weight when the pool is unlimited). Strict
  // less-than over the id-ordered map keeps ties on the lower tenant id.
  bool have = false;
  double best_rank = 0.0;
  TenantId chosen = 0;
  for (const auto& [id, st] : states_) {
    if (present.find(id) == present.end() ||
        blocked_.find(id) != blocked_.end()) {
      continue;
    }
    const double denom = st.fair > 0 ? static_cast<double>(st.fair)
                                     : std::max(st.spec.weight, 1e-12);
    const double rank = static_cast<double>(st.usage) / denom;
    if (!have || rank < best_rank) {
      have = true;
      best_rank = rank;
      chosen = id;
    }
  }
  if (!have) return AdmissionPolicy::npos;
  return admission.select(queue, [this, chosen](const Request& r) {
    return bucket_id(r.tenant) == chosen;
  });
}

bool KarmaAllocator::may_admit(const Request& req,
                               std::int64_t footprint) const {
  if (!TenantTrackingAllocator::may_admit(req, footprint)) return false;
  const State& st = bucket(req.tenant);
  if (st.fair > 0) {
    // Bursting beyond the fair share spends banked credits: the projected
    // overage must be covered by the balance, or the tenant waits for its
    // own releases (or for banking to catch up).
    const std::int64_t overage = st.usage + footprint - st.fair;
    if (overage > 0 && st.credit.balance < overage) return false;
  }
  return true;
}

// ---- Enum shim --------------------------------------------------------------

std::unique_ptr<TenantAllocator> make_tenant_allocator(
    const TenancyConfig& tenancy) {
  if (tenancy.tenants.empty()) return std::make_unique<FifoTenantAllocator>();
  switch (tenancy.policy) {
    case FairPolicy::kFifo:
      return std::make_unique<FifoTenantAllocator>();
    case FairPolicy::kStrictPriority:
      return std::make_unique<StrictPriorityAllocator>(tenancy);
    case FairPolicy::kFairCredit:
      return std::make_unique<KarmaAllocator>(tenancy);
  }
  return std::make_unique<FifoTenantAllocator>();
}

}  // namespace llmib::sched
