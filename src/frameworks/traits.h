#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hw/accelerator.h"

namespace llmib::frameworks {

/// Behavioral model of one inference framework. Every field encodes a
/// mechanism the paper explicitly attributes differences to (§V, §VII):
/// kernel quality, GQA-aware attention kernels, paged KV, batching policy,
/// host overheads, and multi-GPU scaling quality.
struct FrameworkTraits {
  std::string name;

  /// Accelerators this framework runs on (paper Table III + SambaFlow).
  std::set<std::string> supported_hw;

  // ---- Kernel quality ---------------------------------------------------
  /// Fraction of device peak FLOP/s a tuned GEMM reaches.
  double compute_efficiency = 0.7;
  /// Fraction of device peak bandwidth the decode kernels reach at large
  /// batch (the saturated regime).
  double memory_efficiency = 0.8;
  /// Same at batch 1. Defaults to `memory_efficiency` when <= 0. DS-MII's
  /// Dynamic SplitFuse only saturates the device at scale, so it starts
  /// lower and catches up (paper Fig. 12).
  double memory_efficiency_lowbatch = -1.0;

  /// Effective memory efficiency at a given decode batch.
  double memory_efficiency_at(double batch) const;

  // ---- Attention kernel quality -----------------------------------------
  /// 0 = fully GQA-aware kernels (KV traffic uses true KV heads).
  /// 1 = GQA-oblivious (KV expanded to one head per query head, always).
  /// In between: penalty floor once the batch-dependent decay bottoms out
  /// (DS-MII specializes kernels at large batch; llama.cpp never does).
  double gqa_penalty_floor = 0.0;
  /// Whether the GQA penalty decays with batch (kernel specialization).
  bool gqa_penalty_decays = true;

  // ---- KV management ------------------------------------------------------
  bool paged_kv = false;
  std::uint32_t kv_block_size = 16;

  // ---- Batching -----------------------------------------------------------
  bool continuous_batching = false;
  /// > 0: decode processes the batch in serial sub-batches of this size,
  /// re-streaming the weights per pass (llama.cpp's ubatch execution — the
  /// mechanism behind its weak batch scaling, paper Fig. 14).
  int serial_subbatch = 0;

  // ---- Host-side costs ------------------------------------------------------
  /// Per-iteration scheduler/launch overhead.
  double per_step_overhead_s = 50e-6;
  /// Serialized host work per generated token (sampling, detokenize,
  /// graph interpretation). Dominant for llama.cpp.
  double per_token_host_s = 0.0;
  /// Logits leave the device for host-side sampling (DS-MII/llama.cpp);
  /// vocab_size * batch * 4B crosses PCIe per step when true.
  bool host_side_sampling = false;
  /// CPU sampling cost per vocabulary entry per sequence per step
  /// (llama.cpp's full-softmax sampling chain walks the whole vocab on the
  /// host — why Qwen2's 152k vocabulary craters under it, Fig. 36).
  double cpu_sampling_s_per_vocab = 0.0;

  // ---- Multi-device -----------------------------------------------------
  bool tensor_parallel_supported = true;
  /// Fraction of TP collective time hidden under compute.
  double tp_comm_overlap = 0.3;
  /// Fixed launch/synchronization cost per TP collective (python-driven
  /// loops pay more than fused C++ runtimes).
  double tp_sync_s = 25e-6;

  // ---- Memory management ---------------------------------------------------
  /// Fraction of device memory claimed for activation workspace / engine
  /// buffers (TRT-LLM engines size these for max batch up front).
  double workspace_frac = 0.02;
  /// Conservative admission reserves prompt + max_new_tokens of KV before a
  /// request starts (TRT-LLM-style). Optimistic admission (vLLM) reserves
  /// prompt + a fraction of max_new and relies on preemption, achieving
  /// higher steady-state concurrency.
  bool conservative_admission = true;

  // ---- Precision support -------------------------------------------------
  std::set<hw::Precision> supported_precisions;

  bool supports_hw(const std::string& accel_name) const {
    return supported_hw.count(accel_name) > 0;
  }
  bool supports_precision(hw::Precision p) const {
    return supported_precisions.count(p) > 0;
  }

  /// KV traffic multiplier for a model whose query:KV head ratio is `ratio`
  /// when decoding at `batch`. 1.0 for fully GQA-aware kernels or for MHSA
  /// models (ratio == 1).
  double kv_inflation(double batch, double ratio) const;
};

/// Registry of the framework models: TensorRT-LLM, vLLM, DeepSpeed-MII,
/// llama.cpp, and SambaFlow (the SN40L vendor stack).
class FrameworkRegistry {
 public:
  static const FrameworkRegistry& builtin();

  const FrameworkTraits& get(const std::string& name) const;  ///< throws if unknown
  std::optional<FrameworkTraits> try_get(const std::string& name) const;
  std::vector<std::string> names() const;
  void register_traits(FrameworkTraits traits);  ///< throws on duplicate

  /// Table III: framework -> accelerator support matrix rows.
  static std::vector<std::string> paper_framework_names();

 private:
  std::map<std::string, FrameworkTraits> traits_;
};

}  // namespace llmib::frameworks
