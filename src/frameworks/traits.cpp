#include "frameworks/traits.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace llmib::frameworks {

using hw::Precision;
using util::require;

double FrameworkTraits::memory_efficiency_at(double batch) const {
  const double low =
      memory_efficiency_lowbatch > 0 ? memory_efficiency_lowbatch : memory_efficiency;
  const double frac = std::clamp(batch / 64.0, 0.0, 1.0);
  return low + (memory_efficiency - low) * frac;
}

double FrameworkTraits::kv_inflation(double batch, double ratio) const {
  require(batch >= 1, "kv_inflation: batch must be >= 1");
  require(ratio >= 1, "kv_inflation: ratio must be >= 1");
  if (ratio == 1.0) return 1.0;  // MHSA: nothing to be unaware of
  double weight;  // fraction of the worst-case expansion actually paid
  if (gqa_penalty_floor <= 0.0) {
    weight = 0.0;
  } else if (!gqa_penalty_decays) {
    weight = gqa_penalty_floor;
  } else {
    // Kernel specialization kicks in at larger batches; never below floor.
    weight = std::max(gqa_penalty_floor, 1.0 / (1.0 + batch / 8.0));
  }
  return 1.0 + (ratio - 1.0) * weight;
}

namespace {

FrameworkRegistry make_builtin() {
  FrameworkRegistry reg;

  {
    FrameworkTraits t;
    t.name = "TensorRT-LLM";
    t.supported_hw = {"A100", "H100", "GH200"};
    t.compute_efficiency = 0.86;  // fused kernels + kernel auto-tuning
    t.memory_efficiency = 0.92;
    t.gqa_penalty_floor = 0.0;    // GQA "optimized well in this framework"
    t.paged_kv = true;
    t.kv_block_size = 64;
    t.continuous_batching = true;  // in-flight batching
    t.per_step_overhead_s = 15e-6;
    t.per_token_host_s = 4e-6;
    t.tensor_parallel_supported = true;
    t.tp_comm_overlap = 0.55;
    t.tp_sync_s = 20e-6;
    t.workspace_frac = 0.07;  // engine activation buffers sized for max batch
    t.conservative_admission = false;  // paged KV + in-flight batching
    t.supported_precisions = {Precision::kFP32, Precision::kFP16, Precision::kBF16,
                              Precision::kFP8, Precision::kINT8, Precision::kINT4};
    reg.register_traits(t);
  }
  {
    FrameworkTraits t;
    t.name = "vLLM";
    t.supported_hw = {"A100", "H100", "GH200", "MI250", "MI300X", "Gaudi2"};
    t.compute_efficiency = 0.76;
    t.memory_efficiency = 0.85;  // PagedAttention gather vs TRT's fused path
    t.gqa_penalty_floor = 0.0;
    t.paged_kv = true;
    t.kv_block_size = 16;
    t.continuous_batching = true;
    t.per_step_overhead_s = 35e-6;  // python scheduler loop
    t.per_token_host_s = 8e-6;
    t.tensor_parallel_supported = true;
    t.tp_comm_overlap = 0.20;
    t.tp_sync_s = 50e-6;  // python scheduler drives each collective
    t.workspace_frac = 0.02;
    t.conservative_admission = false;  // PagedAttention admits optimistically
    t.supported_precisions = {Precision::kFP32, Precision::kFP16, Precision::kBF16,
                              Precision::kFP8, Precision::kINT8, Precision::kINT4};
    reg.register_traits(t);
  }
  {
    FrameworkTraits t;
    t.name = "DeepSpeed-MII";
    t.supported_hw = {"A100", "Gaudi2"};  // paper Table III
    t.compute_efficiency = 0.80;
    t.memory_efficiency = 0.95;  // Dynamic SplitFuse + deep fusion at scale
    t.memory_efficiency_lowbatch = 0.66;  // under-saturated at small batch
    t.gqa_penalty_floor = 0.10;  // kernels specialize at large batch only
    t.gqa_penalty_decays = true;
    t.paged_kv = true;           // "blocked KV-caching"
    t.kv_block_size = 128;
    t.continuous_batching = true;
    t.per_step_overhead_s = 40e-6;
    t.per_token_host_s = 10e-6;
    t.host_side_sampling = true;  // logits sampled via torch on host
    t.tensor_parallel_supported = true;
    t.tp_comm_overlap = 0.45;
    t.tp_sync_s = 40e-6;
    t.workspace_frac = 0.03;
    t.conservative_admission = false;
    t.supported_precisions = {Precision::kFP32, Precision::kFP16, Precision::kBF16,
                              Precision::kINT8};
    reg.register_traits(t);
  }
  {
    FrameworkTraits t;
    t.name = "llama.cpp";
    t.supported_hw = {"A100", "H100", "GH200", "MI250", "MI300X"};
    t.compute_efficiency = 0.32;  // no tensor-core-shaped GEMMs for decode
    t.memory_efficiency = 0.48;
    t.gqa_penalty_floor = 1.0;    // "unable to take advantage of GQA"
    t.gqa_penalty_decays = false;
    t.paged_kv = false;
    t.continuous_batching = false;
    t.per_step_overhead_s = 120e-6;  // ggml graph walk per iteration
    t.per_token_host_s = 450e-6;     // serialized per-token host work
    t.host_side_sampling = true;
    t.cpu_sampling_s_per_vocab = 12e-9;  // full-softmax CPU sampling chain
    t.serial_subbatch = 8;           // ubatch-serialized decode
    t.tensor_parallel_supported = false;  // layer-split only
    t.tp_comm_overlap = 0.0;
    t.tp_sync_s = 0.0;
    t.workspace_frac = 0.12;  // per-layer compute buffers + context scratch
    t.conservative_admission = true;  // static batch
    t.supported_precisions = {Precision::kFP32, Precision::kFP16, Precision::kBF16,
                              Precision::kFP8, Precision::kINT8, Precision::kINT4};
    reg.register_traits(t);
  }
  {
    FrameworkTraits t;
    t.name = "SambaFlow";
    t.supported_hw = {"SN40L"};
    t.compute_efficiency = 0.93;  // whole-decoder kernel fusion
    t.memory_efficiency = 0.95;
    t.gqa_penalty_floor = 0.0;
    t.paged_kv = false;           // static dataflow, tiered memory
    t.continuous_batching = true;
    t.per_step_overhead_s = 5e-6;
    t.per_token_host_s = 2e-6;
    t.tensor_parallel_supported = true;
    t.tp_comm_overlap = 0.7;      // dataflow pipelining over inter-RDU links
    t.tp_sync_s = 8e-6;
    t.workspace_frac = 0.05;
    t.conservative_admission = true;  // compiled static dataflow graphs
    t.supported_precisions = {Precision::kFP32, Precision::kBF16, Precision::kFP16,
                              Precision::kINT8};
    reg.register_traits(t);
  }

  return reg;
}

}  // namespace

const FrameworkRegistry& FrameworkRegistry::builtin() {
  static const FrameworkRegistry reg = make_builtin();
  return reg;
}

const FrameworkTraits& FrameworkRegistry::get(const std::string& name) const {
  auto it = traits_.find(name);
  require(it != traits_.end(), "unknown framework: " + name);
  return it->second;
}

std::optional<FrameworkTraits> FrameworkRegistry::try_get(const std::string& name) const {
  auto it = traits_.find(name);
  if (it == traits_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> FrameworkRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(traits_.size());
  for (const auto& [name, t] : traits_) out.push_back(name);
  return out;
}

void FrameworkRegistry::register_traits(FrameworkTraits traits) {
  require(!traits.name.empty(), "framework needs a name");
  require(traits.compute_efficiency > 0 && traits.compute_efficiency <= 1.2,
          traits.name + ": compute efficiency out of range");
  require(traits.memory_efficiency > 0 && traits.memory_efficiency <= 1.0,
          traits.name + ": memory efficiency out of range");
  require(traits.gqa_penalty_floor >= 0 && traits.gqa_penalty_floor <= 1.0,
          traits.name + ": gqa penalty floor out of range");
  require(!traits.supported_hw.empty(), traits.name + ": needs supported hardware");
  const std::string name = traits.name;
  const bool inserted = traits_.emplace(name, std::move(traits)).second;
  require(inserted, "duplicate framework: " + name);
}

std::vector<std::string> FrameworkRegistry::paper_framework_names() {
  return {"TensorRT-LLM", "vLLM", "DeepSpeed-MII", "llama.cpp"};
}

}  // namespace llmib::frameworks
