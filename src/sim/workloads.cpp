#include "sim/workloads.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace llmib::sim {

using util::require;

namespace {

/// Shared conversation-chain generator: `steps(rng)` picks the turn count,
/// `fresh(rng)` the new tokens injected each turn, `output(rng)` the reply
/// length. Turn 0 carries `head` extra tokens (system prompt) and claims
/// nothing; turn t claims its full prior context and marks its own
/// prompt+output cacheable for the next turn.
template <typename Steps, typename Fresh, typename Output>
std::vector<TraceRequest> conversation_chains(
    std::int64_t chains, std::int64_t head, double start_rate_rps,
    double gap_mean_s, util::Rng& rng, Steps steps, Fresh fresh,
    Output output) {
  require(chains > 0, "workloads: need at least one conversation");
  require(head >= 0, "workloads: negative system prompt");
  require(start_rate_rps > 0, "workloads: start rate must be positive");
  require(gap_mean_s > 0, "workloads: think/step gap must be positive");

  std::vector<TraceRequest> reqs;
  double start = 0;
  for (std::int64_t c = 0; c < chains; ++c) {
    start += rng.exponential(start_rate_rps);
    double t = start;
    std::int64_t context = 0;  // cached history after the previous turn
    const std::int64_t turns = steps(rng);
    for (std::int64_t k = 0; k < turns; ++k) {
      TraceRequest r;
      r.arrival_s = t;
      const std::int64_t inject = (k == 0 ? head : 0) + fresh(rng);
      r.prompt_tokens = context + std::max<std::int64_t>(inject, k == 0 ? 1 : 0);
      r.output_tokens = output(rng);
      r.prefix_group = c;
      r.shared_prefix_tokens = context;  // claim: replayed history
      r.cacheable_tokens = r.prompt_tokens + r.output_tokens;
      reqs.push_back(r);
      context = r.prompt_tokens + r.output_tokens;
      t += rng.exponential(1.0 / gap_mean_s);
    }
  }
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return reqs;
}

}  // namespace

std::vector<TraceRequest> multi_tenant_trace(
    const std::vector<TenantStream>& streams, std::uint64_t seed) {
  require(!streams.empty(), "multi_tenant_trace: need at least one stream");
  util::Rng root(seed);
  std::vector<TraceRequest> reqs;
  for (const TenantStream& s : streams) {
    require(s.tenant >= 0, "multi_tenant_trace: negative tenant id");
    require(s.rate_rps > 0, "multi_tenant_trace: rate must be positive");
    require(s.num_requests > 0, "multi_tenant_trace: empty stream");
    require(s.prompt_min > 0 && s.prompt_min <= s.prompt_max,
            "multi_tenant_trace: bad prompt range");
    require(s.output_min > 0 && s.output_min <= s.output_max,
            "multi_tenant_trace: bad output range");
    require(s.start_s >= 0, "multi_tenant_trace: negative start offset");
    util::Rng rng = root.fork();
    double t = s.start_s;
    for (std::int64_t i = 0; i < s.num_requests; ++i) {
      TraceRequest r;
      t += rng.exponential(s.rate_rps);
      r.arrival_s = t;
      r.prompt_tokens = rng.uniform_int(s.prompt_min, s.prompt_max);
      r.output_tokens = rng.uniform_int(s.output_min, s.output_max);
      r.tenant = s.tenant;
      reqs.push_back(r);
    }
  }
  // stable_sort: same-arrival ties keep stream declaration order.
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return reqs;
}

RequestTrace chat_trace(const ChatScenario& sc) {
  require(sc.turns_min > 0 && sc.turns_min <= sc.turns_max,
          "chat_trace: bad turns range");
  require(sc.user_turn_min >= 0 && sc.user_turn_min <= sc.user_turn_max,
          "chat_trace: bad user-turn range");
  require(sc.output_min > 0 && sc.output_min <= sc.output_max,
          "chat_trace: bad output range");
  util::Rng rng(sc.seed);
  auto reqs = conversation_chains(
      sc.conversations, sc.system_prompt_tokens, sc.start_rate_rps,
      sc.think_time_mean_s, rng,
      [&](util::Rng& r) { return r.uniform_int(sc.turns_min, sc.turns_max); },
      [&](util::Rng& r) {
        return r.uniform_int(sc.user_turn_min, sc.user_turn_max);
      },
      [&](util::Rng& r) { return r.uniform_int(sc.output_min, sc.output_max); });
  return RequestTrace(std::move(reqs));
}

RequestTrace agent_loop_trace(const AgentLoopScenario& sc) {
  require(sc.steps_min > 0 && sc.steps_min <= sc.steps_max,
          "agent_loop_trace: bad steps range");
  require(sc.tool_output_min >= 0 && sc.tool_output_min <= sc.tool_output_max,
          "agent_loop_trace: bad tool-output range");
  require(sc.output_min > 0 && sc.output_min <= sc.output_max,
          "agent_loop_trace: bad output range");
  util::Rng rng(sc.seed);
  auto reqs = conversation_chains(
      sc.agents, sc.system_prompt_tokens, sc.start_rate_rps, sc.step_gap_mean_s,
      rng,
      [&](util::Rng& r) { return r.uniform_int(sc.steps_min, sc.steps_max); },
      [&](util::Rng& r) {
        return r.uniform_int(sc.tool_output_min, sc.tool_output_max);
      },
      [&](util::Rng& r) { return r.uniform_int(sc.output_min, sc.output_max); });
  return RequestTrace(std::move(reqs));
}

double trace_share_ratio(const std::vector<TraceRequest>& requests) {
  std::int64_t shared = 0, prompt = 0;
  for (const auto& r : requests) {
    shared += std::min(r.shared_prefix_tokens, r.prompt_tokens);
    prompt += r.prompt_tokens;
  }
  return prompt > 0 ? static_cast<double>(shared) / static_cast<double>(prompt)
                    : 0.0;
}

}  // namespace llmib::sim
