#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hw/accelerator.h"
#include "models/config.h"
#include "obs/snapshot.h"
#include "parallel/plan.h"
#include "parallel/selector.h"

namespace llmib::sim {

/// Speculative-decoding setup (paper §IV-B.5, Fig. 4b).
struct SpeculativeConfig {
  std::string draft_model = "LLaMA-68M";
  int lookahead = 4;               ///< draft tokens proposed per cycle
  /// Per-token acceptance at short context; <= 0 selects an automatic
  /// value from the target architecture (see default_draft_acceptance).
  double base_acceptance = 0.0;
  /// Acceptance decays with context: alpha(ctx) = base * (1 - decay * min(1, ctx/ref)).
  double acceptance_decay = 0.35;
  double acceptance_decay_ref_ctx = 2048.0;
};

/// One benchmark point: (model, accelerator, framework, precision,
/// parallelism, batch, input len, output len) — the axes of every figure in
/// the paper.
struct SimConfig {
  std::string model = "LLaMA-3-8B";
  std::string accelerator = "A100";
  std::string framework = "vLLM";
  hw::Precision precision = hw::Precision::kFP16;       ///< weights + math
  hw::Precision kv_precision = hw::Precision::kFP16;
  parallel::ParallelPlan plan;
  /// How TP/PP/EP collectives are priced: kAnalytic keeps the seed's closed
  /// alpha-beta forms (every published figure stays pinned); kStepped runs
  /// the topology-aware CollectiveSelector's per-algorithm step schedules.
  parallel::CommBackend comm_backend = parallel::CommBackend::kAnalytic;

  std::int64_t batch_size = 1;
  std::int64_t input_tokens = 128;
  std::int64_t output_tokens = 128;

  /// Paper Fig. 2a ablation: disable KV caching (recompute attention).
  bool kv_cache_enabled = true;
  /// Paper Fig. 2b: override the framework's paged-KV block size.
  std::optional<std::uint32_t> kv_block_override;
  /// Cap on concurrent sequences; 0 => batch_size (all submitted at once).
  std::int64_t max_concurrent = 0;
  /// Automatic prefix caching (vLLM feature): when requests share a prompt
  /// prefix (ServingWorkload::shared_prefix_tokens), its KV is computed once
  /// and reused, shrinking later prefills. Only affects the serving loop.
  bool prefix_caching = false;

  std::optional<SpeculativeConfig> speculative;
};

/// Architecture-derived per-token draft acceptance used when
/// SpeculativeConfig::base_acceptance <= 0.
double default_draft_acceptance(const models::ModelConfig& target);

enum class RunStatus { kOk, kOom, kUnsupported };

std::string run_status_name(RunStatus s);

/// Everything the paper reports for one benchmark point.
struct SimResult {
  RunStatus status = RunStatus::kOk;
  std::string status_detail;

  // Latency metrics (paper §III-5).
  double ttft_s = 0.0;           ///< mean time to first token
  double itl_s = 0.0;            ///< inter-token latency, paper eq. (1)
  double e2e_latency_s = 0.0;    ///< submit -> last token of last sequence

  // Throughput metrics.
  double throughput_tps = 0.0;         ///< paper eq. (2): batch*(in+out)/e2e
  double decode_throughput_tps = 0.0;  ///< generated tokens / e2e

  // Power metrics (whole allocation, all devices).
  double average_power_w = 0.0;
  double tokens_per_sec_per_watt = 0.0;
  double energy_j = 0.0;

  // Mechanism observability.
  std::int64_t waves = 0;            ///< admission waves (memory pressure)
  double weight_bytes_per_device = 0.0;
  double kv_peak_bytes_per_device = 0.0;
  double avg_compute_util = 0.0;
  double avg_memory_util = 0.0;
  double speculative_speedup = 1.0;  ///< 1.0 when SD disabled

  /// Where the simulated time went: prefill/decode split plus the roofline
  /// terms (compute/memory/comm/host) accumulated over every iteration.
  obs::PhaseBreakdown phases;

  bool ok() const { return status == RunStatus::kOk; }

  /// The point's metrics as an obs::Snapshot (`sim.*` namespace) — the
  /// uniform reporting surface shared with ServingMetrics and the pool.
  obs::Snapshot to_snapshot() const;
};

}  // namespace llmib::sim
