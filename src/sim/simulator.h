#pragma once

#include <vector>

#include "frameworks/traits.h"
#include "hw/device_model.h"
#include "models/config.h"
#include "models/costs.h"
#include "parallel/collectives.h"
#include "sim/config.h"

namespace llmib::sim {

/// Decomposed per-iteration work, exposed so benches and tests can inspect
/// where the time goes.
struct StepBreakdown {
  double compute_s = 0.0;   ///< roofline compute component
  double memory_s = 0.0;    ///< roofline memory component
  double comm_s = 0.0;      ///< TP/PP/EP collectives
  double host_s = 0.0;      ///< per-step + per-token host work
  double total_s = 0.0;
  /// Per-phase decomposition of comm_s under CommBackend::kStepped (empty
  /// on the analytic backend): one entry per phase of each collective the
  /// step ran, seconds already scaled by layer count and overlap. The sim
  /// loop emits one obs span per entry so traces show link occupancy.
  std::vector<parallel::CollectivePhase> comm_phases;
};

/// The analytical inference simulator (DESIGN.md substrate #1).
///
/// Resolves a SimConfig against the builtin registries (or registries the
/// caller injects), checks support/capacity, and walks an iteration-level
/// discrete-event loop driven by sched::Scheduler: batched prefill for
/// newly admitted requests, one decode step per iteration for live
/// sequences, KV growth, wave formation under memory pressure, and power
/// integration.
class InferenceSimulator {
 public:
  InferenceSimulator();
  InferenceSimulator(const models::ModelRegistry& models,
                     const hw::AcceleratorRegistry& accels,
                     const frameworks::FrameworkRegistry& fws);

  /// Run one benchmark point. Never throws for unsupported/OOM points —
  /// those come back with the corresponding RunStatus (they are data the
  /// paper reports); throws util::ContractViolation for malformed configs.
  SimResult run(const SimConfig& cfg) const;

  /// Per-iteration decode cost at a fixed context, for latency analysis
  /// (Fig. 22's ITL discussion). `ctx` is tokens of live context/sequence.
  StepBreakdown decode_step(const SimConfig& cfg, std::int64_t batch,
                            double ctx) const;

  /// Batched prefill cost for `batch` sequences of `seq_len` prompt tokens.
  StepBreakdown prefill_step(const SimConfig& cfg, std::int64_t batch,
                             std::int64_t seq_len) const;

  /// KV-token capacity of the whole allocation for this config (after
  /// weights), or 0 when weights alone do not fit.
  double kv_capacity_tokens(const SimConfig& cfg) const;

  /// Per-device KV footprint of one cached token at this config's
  /// kv_precision (bytes). kv_capacity_tokens * this = the KV byte pool,
  /// which serving uses for byte-denominated admission: a mid-run
  /// quantization switch changes bytes-per-token, not the pool.
  double kv_bytes_per_token_device(const SimConfig& cfg) const;

  /// The registries this simulator resolves against (injected or builtin).
  const models::ModelRegistry& models() const { return models_; }
  const hw::AcceleratorRegistry& accelerators() const { return accels_; }
  const frameworks::FrameworkRegistry& frameworks() const { return fws_; }

 private:
  struct Resolved;  // internal: looked-up specs + derived quantities

  Resolved resolve(const SimConfig& cfg) const;
  /// Shared TP/PP/EP collective costing for decode and prefill steps:
  /// accumulates into s.comm_s (and s.comm_phases under kStepped).
  /// `act_bytes` is the activation payload of one serial-path collective.
  void add_collective_costs(const Resolved& r, double act_bytes,
                            StepBreakdown& s) const;
  StepBreakdown decode_step_resolved(const Resolved& r, std::int64_t batch,
                                     double ctx) const;
  StepBreakdown prefill_step_resolved(const Resolved& r, std::int64_t batch,
                                      std::int64_t seq_len) const;
  SimResult run_resolved(const Resolved& r, const SimConfig& cfg) const;

  const models::ModelRegistry& models_;
  const hw::AcceleratorRegistry& accels_;
  const frameworks::FrameworkRegistry& fws_;
};

}  // namespace llmib::sim
