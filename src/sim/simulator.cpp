#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "kv/paged_allocator.h"
#include "obs/obs.h"
#include "parallel/comm.h"
#include "power/power_model.h"
#include "sched/scheduler.h"
#include "util/check.h"
#include "util/units.h"

namespace llmib::sim {

using util::require;

double default_draft_acceptance(const models::ModelConfig& target) {
  // A 68M draft tracks a same-family 7B dense target well (~0.7 per-token
  // agreement); the gap widens for 70B-class and MoE targets, whose routing
  // makes next-token choices the tiny draft cannot anticipate (the paper's
  // Fig. 4b: "with an increase in ... model size, the benefit of SD
  // vanishes").
  if (target.ffn == models::FfnKind::kMoE) return 0.45;
  if (target.total_params() > 2e10) return 0.55;
  return 0.70;
}

std::string run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kOom: return "oom";
    case RunStatus::kUnsupported: return "unsupported";
  }
  return "?";
}

obs::Snapshot SimResult::to_snapshot() const {
  obs::Snapshot snap;
  snap.set_gauge("sim.ttft_s", ttft_s);
  snap.set_gauge("sim.itl_s", itl_s);
  snap.set_gauge("sim.e2e_latency_s", e2e_latency_s);
  snap.set_gauge("sim.throughput_tps", throughput_tps);
  snap.set_gauge("sim.decode_throughput_tps", decode_throughput_tps);
  snap.set_gauge("sim.average_power_w", average_power_w);
  snap.set_gauge("sim.tokens_per_sec_per_watt", tokens_per_sec_per_watt);
  snap.set_gauge("sim.energy_j", energy_j);
  snap.set_gauge("sim.avg_compute_util", avg_compute_util);
  snap.set_gauge("sim.avg_memory_util", avg_memory_util);
  snap.set_gauge("sim.speculative_speedup", speculative_speedup);
  snap.set_counter("sim.waves", waves);
  snap.set_counter("sim.ok", ok() ? 1 : 0);
  phases.export_into(snap, "sim.phase");
  return snap;
}

namespace {
/// Host <-> device transfer bandwidth for logits when the framework samples
/// on the host (PCIe gen4 x16).
constexpr double kHostLinkBytesPerS = 8e9;  // effective, incl. host softmax/top-k
/// vLLM-style optimistic admission reserves this fraction of max_new.
constexpr double kOptimisticReservation = 0.25;
/// Decode kernels at tiny batch cannot keep every HBM channel busy; the
/// achievable fraction of peak bandwidth ramps with batch.
inline double memory_batch_ramp(double batch) {
  return 0.72 + 0.28 * batch / (batch + 3.0);
}
/// EP load imbalance: experts are never perfectly balanced (paper §IV-C.3).
constexpr double kEpImbalance = 1.30;
}  // namespace

struct InferenceSimulator::Resolved {
  models::ModelConfig model;
  hw::AcceleratorSpec accel;
  frameworks::FrameworkTraits fw;
  hw::DeviceModel device;
  parallel::CommModel comm;
  models::CostModel costs;
  SimConfig cfg;

  double act_bytes = 2.0;        ///< activation element width
  double kv_ratio = 1.0;         ///< query heads per KV head
  double paged_eff = 1.0;        ///< block-size gather efficiency
  hw::Efficiency eff;            ///< framework compute/memory efficiency
  double weight_bytes_per_device = 0.0;
  double weight_spill_bytes = 0.0;      ///< weights resident in tier-3
  double kv_bytes_per_token_device = 0.0;
  double kv_capacity_tokens = 0.0;

  Resolved(const models::ModelConfig& m, const hw::AcceleratorSpec& a,
           const frameworks::FrameworkTraits& f, const SimConfig& c,
           const models::CostOptions& copt)
      : model(m), accel(a), fw(f), device(a, c.precision),
        comm(a, c.comm_backend), costs(m, copt), cfg(c) {}
};

InferenceSimulator::InferenceSimulator()
    : InferenceSimulator(models::ModelRegistry::builtin(),
                         hw::AcceleratorRegistry::builtin(),
                         frameworks::FrameworkRegistry::builtin()) {}

InferenceSimulator::InferenceSimulator(const models::ModelRegistry& models,
                                       const hw::AcceleratorRegistry& accels,
                                       const frameworks::FrameworkRegistry& fws)
    : models_(models), accels_(accels), fws_(fws) {}

InferenceSimulator::Resolved InferenceSimulator::resolve(const SimConfig& cfg) const {
  const models::ModelConfig& model = models_.get(cfg.model);
  const hw::AcceleratorSpec& accel = accels_.get(cfg.accelerator);
  const frameworks::FrameworkTraits& fw = fws_.get(cfg.framework);
  cfg.plan.validate(model);
  require(cfg.batch_size > 0, "batch_size must be positive");
  require(cfg.input_tokens > 0, "input_tokens must be positive");
  require(cfg.output_tokens > 0, "output_tokens must be positive");

  models::CostOptions copt;
  copt.weight_bytes_per_param = hw::bytes_per_element(cfg.precision);
  copt.kv_bytes_per_elem = hw::bytes_per_element(cfg.kv_precision);
  copt.activation_bytes_per_elem = 2.0;  // activations stay 16-bit
  copt.gqa_aware = true;                 // traffic inflation applied per step
  copt.kv_cache_enabled = cfg.kv_cache_enabled;

  Resolved r(model, accel, fw, cfg, copt);
  r.act_bytes = copt.activation_bytes_per_elem;
  r.kv_ratio = static_cast<double>(model.n_heads) / model.n_kv_heads;

  r.eff.compute = fw.compute_efficiency;
  r.eff.memory = fw.memory_efficiency;
  if (fw.paged_kv) {
    const std::uint32_t block = cfg.kv_block_override.value_or(fw.kv_block_size);
    r.paged_eff = kv::paged_attention_bw_efficiency(block);
  }

  const auto& plan = cfg.plan;
  r.weight_bytes_per_device =
      r.costs.weight_bytes() * parallel::weight_shard_fraction(plan);
  const double usable = r.device.usable_memory_bytes() * (1.0 - fw.workspace_frac);
  // Tiered-memory devices (SN40L) spill weights to DDR rather than filling
  // HBM to the brim: keep ~20% of HBM for KV when a tier-3 exists.
  const double hbm_weight_limit =
      r.device.tier3_memory_bytes() > 0 ? usable * 0.8 : usable;
  if (r.weight_bytes_per_device > hbm_weight_limit) {
    r.weight_spill_bytes = r.weight_bytes_per_device - hbm_weight_limit;
  }
  r.kv_bytes_per_token_device =
      r.costs.kv_bytes_per_token() * parallel::kv_shard_fraction(plan);
  const double kv_space =
      usable - std::min(r.weight_bytes_per_device - r.weight_spill_bytes, usable);
  r.kv_capacity_tokens =
      r.kv_bytes_per_token_device > 0 ? kv_space / r.kv_bytes_per_token_device : 0;
  return r;
}

double InferenceSimulator::kv_capacity_tokens(const SimConfig& cfg) const {
  return resolve(cfg).kv_capacity_tokens;
}

double InferenceSimulator::kv_bytes_per_token_device(const SimConfig& cfg) const {
  return resolve(cfg).kv_bytes_per_token_device;
}

StepBreakdown InferenceSimulator::prefill_step(const SimConfig& cfg,
                                               std::int64_t batch,
                                               std::int64_t seq_len) const {
  return prefill_step_resolved(resolve(cfg), batch, seq_len);
}

StepBreakdown InferenceSimulator::decode_step(const SimConfig& cfg,
                                              std::int64_t batch, double ctx) const {
  return decode_step_resolved(resolve(cfg), batch, ctx);
}

namespace {

/// Combine compute and memory roofline components the way DeviceModel does,
/// with the device's overlap and saturation behavior.
double combine_roofline(const hw::DeviceModel& dev, double compute_s,
                        double memory_s, double batch) {
  // Recreate kernel_time_s semantics from precomputed components.
  const double overlap =
      std::clamp(0.80 + 0.40 * dev.spec().hetero_overlap, 0.0, 0.99);
  const double base = std::max(compute_s, memory_s) +
                      (1.0 - overlap) * std::min(compute_s, memory_s);
  return base * dev.saturation_derate(batch);
}

}  // namespace

void InferenceSimulator::add_collective_costs(const Resolved& r,
                                              double act_bytes,
                                              StepBreakdown& s) const {
  const auto& plan = r.cfg.plan;
  const auto& m = r.model;
  const bool stepped = r.comm.backend() == parallel::CommBackend::kStepped;
  // Under kStepped, keep the per-phase decomposition (scaled by how many
  // times the step runs the collective) so the sim loop can emit one span
  // per phase. The analytic backend records nothing: its closed forms have
  // no internal structure and existing traces stay byte-identical.
  auto record = [&](parallel::CollectiveOp op, double bytes, int n,
                    double scale) {
    if (!stepped) return;
    for (parallel::CollectivePhase ph : r.comm.schedule(op, bytes, n).phases) {
      ph.seconds *= scale;
      s.comm_phases.push_back(ph);
    }
  };
  if (plan.tp > 1) {
    const double per_collective =
        r.comm.allreduce_s(act_bytes, plan.tp) + r.fw.tp_sync_s;
    // Two all-reduces per layer along the serial path, regardless of PP.
    s.comm_s += 2.0 * m.n_layers * per_collective * (1.0 - r.fw.tp_comm_overlap);
    record(parallel::CollectiveOp::kAllReduce, act_bytes, plan.tp,
           2.0 * m.n_layers * (1.0 - r.fw.tp_comm_overlap));
  }
  if (plan.pp > 1) {
    s.comm_s += (plan.pp - 1.0) * r.comm.p2p_s(act_bytes);
    record(parallel::CollectiveOp::kP2P, act_bytes, 2, plan.pp - 1.0);
  }
  if (plan.ep > 1) {
    s.comm_s += 2.0 * m.n_layers * r.comm.alltoall_s(act_bytes, plan.ep);
    record(parallel::CollectiveOp::kAllToAll, act_bytes, plan.ep,
           2.0 * m.n_layers);
  }
}

StepBreakdown InferenceSimulator::decode_step_resolved(const Resolved& r,
                                                       std::int64_t batch,
                                                       double ctx) const {
  require(batch > 0, "decode batch must be positive");
  const auto& plan = r.cfg.plan;
  const double tp = plan.tp, ep = plan.ep;
  const auto& m = r.model;
  const auto& c = r.costs;

  StepBreakdown s;
  double flops, bytes;
  if (r.cfg.kv_cache_enabled) {
    // --- FLOPs: linear + attention + LM head, sharded by TP and (FFN) EP.
    double lin = c.linear_flops_per_token();
    if (ep > 1) {
      // EP shards sequences; expert compute additionally pays imbalance.
      lin *= kEpImbalance;
    }
    flops = batch * (lin + c.attention_flops_per_token(ctx) + c.lm_head_flops()) /
            (tp * ep);

    // --- Bytes: weights stream once per serial pass (PP stages are serial,
    // so PP does not shrink per-step weight traffic); KV reads inflate when
    // the kernels are not GQA-aware. EP shards expert weights but REPLICATES
    // attention/embedding weights, and its routing imbalance means the
    // slowest device streams more than its fair share of experts.
    // Serial sub-batched decode (llama.cpp) re-streams the weights once per
    // sub-batch pass.
    const double passes =
        r.fw.serial_subbatch > 0
            ? std::ceil(static_cast<double>(batch) / r.fw.serial_subbatch)
            : 1.0;
    double weights_serial;
    if (ep > 1) {
      weights_serial = c.non_expert_weight_bytes() / tp +
                       c.expert_weight_bytes_touched(batch) * kEpImbalance / (tp * ep);
    } else {
      weights_serial = c.weight_bytes_touched(batch) / tp;
    }
    weights_serial *= passes;
    const double inflation = r.fw.kv_inflation(static_cast<double>(batch), r.kv_ratio);
    // Windowed attention (Mistral) reads only the attended span of cache.
    const double kv_serial = batch * (c.effective_ctx(ctx) + 1.0) *
                             c.kv_bytes_per_token() * inflation / (tp * ep);
    const double act_serial =
        batch * m.hidden_size * 4.0 * m.n_layers * r.act_bytes / (tp * ep);
    bytes = weights_serial + kv_serial + act_serial;
  } else {
    // KV cache disabled: recompute the whole prefix each step (Fig. 2a).
    flops = c.decode_flops(batch, ctx) / (tp * ep);
    bytes = c.decode_bytes(batch, ctx) / (tp * ep);
  }

  hw::Efficiency eff = r.eff;
  eff.memory = r.fw.memory_efficiency_at(static_cast<double>(batch)) * r.paged_eff *
               memory_batch_ramp(static_cast<double>(batch));
  // Without a KV cache the recomputed prefix tokens are all in flight, so
  // the compute units ramp on batch*(ctx+1) tokens, not batch.
  const double tokens_in_flight =
      r.cfg.kv_cache_enabled ? static_cast<double>(batch)
                             : static_cast<double>(batch) * (ctx + 1.0);
  s.compute_s = r.device.compute_time_s(flops, eff, tokens_in_flight);
  s.memory_s = r.device.memory_time_s(bytes, eff);
  // Weights spilled to tier-3 memory (SN40L DDR) stream at tier-3 bandwidth.
  if (r.weight_spill_bytes > 0 && r.accel.tier3_bandwidth_gbs > 0) {
    s.memory_s += r.weight_spill_bytes / (r.accel.tier3_bandwidth_gbs * 1e9);
  }

  // --- Collectives -------------------------------------------------------
  const double token_act_bytes = batch * m.hidden_size * r.act_bytes;
  add_collective_costs(r, token_act_bytes, s);

  // --- Host-side work ------------------------------------------------------
  const double host_passes =
      r.fw.serial_subbatch > 0
          ? std::ceil(static_cast<double>(batch) / r.fw.serial_subbatch)
          : 1.0;
  s.host_s = r.fw.per_step_overhead_s * host_passes + batch * r.fw.per_token_host_s;
  if (!r.cfg.kv_cache_enabled) {
    // Recomputing the prefix runs unfused per-layer kernels each step
    // (HF-style no-cache path): per-layer launch/dispatch overhead.
    s.host_s += m.n_layers * 200e-6;
  }
  if (r.fw.host_side_sampling) {
    s.host_s += batch * static_cast<double>(m.vocab_size) * 4.0 / kHostLinkBytesPerS;
  }
  if (r.fw.cpu_sampling_s_per_vocab > 0) {
    s.host_s += batch * static_cast<double>(m.vocab_size) * r.fw.cpu_sampling_s_per_vocab;
  }

  const double kernel =
      combine_roofline(r.device, s.compute_s, s.memory_s, static_cast<double>(batch));
  s.total_s = kernel + s.comm_s + s.host_s;
  return s;
}

StepBreakdown InferenceSimulator::prefill_step_resolved(const Resolved& r,
                                                        std::int64_t batch,
                                                        std::int64_t seq_len) const {
  require(batch > 0, "prefill batch must be positive");
  require(seq_len > 0, "prefill seq_len must be positive");
  const auto& plan = r.cfg.plan;
  const double tp = plan.tp, ep = plan.ep;
  const auto& m = r.model;
  const auto& c = r.costs;
  const double tokens = static_cast<double>(batch) * seq_len;

  StepBreakdown s;
  double flops = batch * c.prefill_flops(seq_len) / (tp * ep);
  if (ep > 1) flops *= kEpImbalance;
  // Prefill touches essentially every expert once the token count is large.
  const double weights_serial =
      c.weight_bytes_touched(std::max<std::int64_t>(batch * seq_len, batch)) /
      (tp * ep);
  const double kv_write = tokens * c.kv_bytes_per_token() / (tp * ep);
  const double act =
      tokens * m.hidden_size * 4.0 * m.n_layers * r.act_bytes / (tp * ep);
  const double bytes = weights_serial + kv_write + act;

  hw::Efficiency eff = r.eff;  // prefill writes KV linearly: no paged penalty
  s.compute_s = r.device.compute_time_s(flops, eff, tokens);
  s.memory_s = r.device.memory_time_s(bytes, eff);
  if (r.weight_spill_bytes > 0 && r.accel.tier3_bandwidth_gbs > 0) {
    s.memory_s += r.weight_spill_bytes / (r.accel.tier3_bandwidth_gbs * 1e9);
  }

  const double act_transfer = tokens * m.hidden_size * r.act_bytes;
  add_collective_costs(r, act_transfer, s);

  s.host_s = r.fw.per_step_overhead_s;

  const double kernel = combine_roofline(r.device, s.compute_s, s.memory_s,
                                         static_cast<double>(batch));
  s.total_s = kernel + s.comm_s + s.host_s + r.accel.fixed_request_latency_s;
  return s;
}

namespace {

/// Expected tokens committed per speculative cycle with per-token
/// acceptance `alpha` and lookahead `k`: sum_{i=0..k} alpha^i.
double expected_accepted(double alpha, int k) {
  double sum = 0, p = 1;
  for (int i = 0; i <= k; ++i) {
    sum += p;
    p *= alpha;
  }
  return sum;
}

}  // namespace

SimResult InferenceSimulator::run(const SimConfig& cfg) const {
  // Support checks come back as data, not exceptions.
  const auto& fw = fws_.get(cfg.framework);
  const auto& accel = accels_.get(cfg.accelerator);
  SimResult res;
  if (!fw.supports_hw(cfg.accelerator)) {
    res.status = RunStatus::kUnsupported;
    res.status_detail = cfg.framework + " does not run on " + cfg.accelerator;
    return res;
  }
  if (!fw.supports_precision(cfg.precision) || !accel.supports(cfg.precision)) {
    res.status = RunStatus::kUnsupported;
    res.status_detail = hw::precision_name(cfg.precision) + " unsupported on " +
                        cfg.accelerator + " + " + cfg.framework;
    return res;
  }
  if (cfg.plan.devices() > accel.devices_per_node) {
    res.status = RunStatus::kUnsupported;
    res.status_detail = "plan needs " + std::to_string(cfg.plan.devices()) +
                        " devices; node has " + std::to_string(accel.devices_per_node);
    return res;
  }
  if (cfg.plan.tp > 1 && !fw.tensor_parallel_supported) {
    res.status = RunStatus::kUnsupported;
    res.status_detail = cfg.framework + " has no tensor parallelism (use PP)";
    return res;
  }
  return run_resolved(resolve(cfg), cfg);
}

SimResult InferenceSimulator::run_resolved(const Resolved& r, const SimConfig& cfg) const {
  SimResult res;
  // Each run gets its own virtual track so concurrent sweep points never
  // interleave their sim-clock spans (only claimed when tracing is live).
  const std::uint32_t track = obs::tracing_enabled() ? obs::claim_sim_track() : 0;
  res.weight_bytes_per_device = r.weight_bytes_per_device;

  // Surface the comm model's resolution (satellite of the collective-layer
  // PR): which fabric was priced, at what rate, whether the documented kNone
  // PCIe default kicked in, and which backend is live. Gauges are
  // last-writer-wins — they describe the most recent point.
  {
    static obs::Gauge& g_bw = obs::Registry::global().gauge("sim.comm.link_gbs");
    static obs::Gauge& g_fb = obs::Registry::global().gauge("sim.comm.fallback");
    static obs::Gauge& g_ic =
        obs::Registry::global().gauge("sim.comm.interconnect");
    static obs::Gauge& g_st = obs::Registry::global().gauge("sim.comm.stepped");
    g_bw.set(r.comm.link_bandwidth_bytes_s() / 1e9);
    g_fb.set(r.comm.bandwidth_is_fallback() ? 1.0 : 0.0);
    g_ic.set(static_cast<double>(r.comm.interconnect()));
    g_st.set(r.comm.backend() == parallel::CommBackend::kStepped ? 1.0 : 0.0);
  }

  // ---- Capacity checks ---------------------------------------------------
  if (r.weight_spill_bytes > 0 && r.device.tier3_memory_bytes() == 0) {
    res.status = RunStatus::kOom;
    res.status_detail = "weights need " + util::format_bytes(r.weight_bytes_per_device) +
                        " per device; usable " +
                        util::format_bytes(r.device.usable_memory_bytes());
    return res;
  }
  if (r.weight_spill_bytes > r.device.tier3_memory_bytes()) {
    res.status = RunStatus::kOom;
    res.status_detail = "weights exceed HBM + tier-3 capacity";
    return res;
  }
  const std::int64_t footprint = cfg.input_tokens + cfg.output_tokens;
  if (static_cast<double>(footprint) > r.kv_capacity_tokens) {
    res.status = RunStatus::kOom;
    res.status_detail = "one sequence's KV (" + std::to_string(footprint) +
                        " tokens) exceeds capacity (" +
                        std::to_string(static_cast<std::int64_t>(r.kv_capacity_tokens)) +
                        ")";
    return res;
  }
  if (r.accel.static_shape_kv) {
    const double required = static_cast<double>(cfg.batch_size) * footprint;
    if (required > r.kv_capacity_tokens) {
      res.status = RunStatus::kOom;
      res.status_detail = "static-shape KV for batch " + std::to_string(cfg.batch_size) +
                          " needs " + std::to_string(static_cast<std::int64_t>(required)) +
                          " tokens; capacity " +
                          std::to_string(static_cast<std::int64_t>(r.kv_capacity_tokens));
      return res;
    }
  }

  // ---- Scheduler setup -----------------------------------------------------
  sched::Scheduler::Config scfg;
  scfg.policy = r.fw.continuous_batching ? sched::BatchPolicy::kContinuous
                                         : sched::BatchPolicy::kStatic;
  scfg.max_batch = cfg.max_concurrent > 0 ? cfg.max_concurrent : cfg.batch_size;
  scfg.kv_capacity_tokens = static_cast<std::int64_t>(r.kv_capacity_tokens);
  scfg.reservation_frac =
      r.fw.conservative_admission ? 1.0 : kOptimisticReservation;
  sched::Scheduler scheduler(scfg);
  for (std::int64_t i = 0; i < cfg.batch_size; ++i) {
    scheduler.submit({static_cast<sched::RequestId>(i), cfg.input_tokens,
                      cfg.output_tokens, 0.0});
  }

  // ---- Speculative decoding: a per-cycle speedup on decode steps ----------
  std::optional<Resolved> draft;
  if (cfg.speculative) {
    SimConfig dcfg = cfg;
    dcfg.model = cfg.speculative->draft_model;
    dcfg.plan = parallel::ParallelPlan{};  // draft runs on one device
    dcfg.speculative.reset();
    draft.emplace(resolve(dcfg));
  }

  const power::PowerModel pmodel(r.accel);
  const int devices = cfg.plan.devices();
  double now = 0.0;
  double ttft_sum = 0.0;
  std::int64_t ttft_count = 0;
  double energy = 0.0;
  double util_c_weighted = 0.0, util_m_weighted = 0.0;
  double spec_speedup_weighted = 0.0, spec_time = 0.0;
  double kv_peak_tokens = 0.0;

  const std::int64_t max_iterations =
      (cfg.output_tokens + 2) * std::max<std::int64_t>(cfg.batch_size, 1) + 64;
  std::int64_t iterations = 0;

  auto account = [&](const StepBreakdown& step, double flops, double bytes) {
    const double cu = step.total_s > 0
                          ? std::clamp(flops / step.total_s / r.device.peak_flops(), 0.0, 1.0)
                          : 0.0;
    const double mu = step.total_s > 0
                          ? std::clamp(bytes / step.total_s / r.device.peak_bandwidth_bytes(),
                                       0.0, 1.0)
                          : 0.0;
    util_c_weighted += cu * step.total_s;
    util_m_weighted += mu * step.total_s;
    energy += pmodel.instantaneous_watts(cu, mu) * devices * step.total_s;
  };

  // Stepped-backend comm phases, laid back-to-back at the tail of the step
  // window (collectives close each serial pass): one span per phase so the
  // Perfetto track shows reduce-scatter/allgather/exchange link occupancy.
  auto emit_comm_phases = [&](const StepBreakdown& step, double start) {
    if (!obs::tracing_enabled() || step.comm_phases.empty()) return;
    double dur = 0.0;
    for (const auto& ph : step.comm_phases) dur += ph.seconds;
    double t = std::max(start, start + step.total_s - dur);
    for (const auto& ph : step.comm_phases) {
      obs::emit_span(parallel::phase_span_name(ph.name), obs::Cat::kSim, t,
                     ph.seconds, track, ph.steps);
      t += ph.seconds;
    }
  };

  while (!scheduler.all_done()) {
    require(++iterations <= max_iterations, "simulator failed to converge");
    const sched::StepPlan plan = scheduler.plan_step();
    require(!plan.empty(), "scheduler stalled with pending work");

    if (!plan.prefills.empty()) {
      const auto nprefill = static_cast<std::int64_t>(plan.prefills.size());
      const StepBreakdown p = prefill_step_resolved(r, nprefill, cfg.input_tokens);
      obs::emit_span("sim.prefill", obs::Cat::kSim, now, p.total_s, track, nprefill);
      emit_comm_phases(p, now);
      res.phases.prefill_s += p.total_s;
      res.phases.compute_s += p.compute_s;
      res.phases.memory_s += p.memory_s;
      res.phases.comm_s += p.comm_s;
      res.phases.host_s += p.host_s;
      ++res.phases.prefill_steps;
      now += p.total_s;
      const double flops =
          nprefill * r.costs.prefill_flops(cfg.input_tokens) / (cfg.plan.tp * cfg.plan.ep);
      account(p, flops, 0.0);
      for (sched::RequestId id : plan.prefills) {
        ttft_sum += now;
        ++ttft_count;
        scheduler.complete_decode_token(id);  // the prefill emits token #1
      }
    }

    if (!plan.decodes.empty()) {
      const auto ndecode = static_cast<std::int64_t>(plan.decodes.size());
      double ctx_sum = 0.0;
      for (sched::RequestId id : plan.decodes) ctx_sum += scheduler.context_length(id);
      const double avg_ctx = ctx_sum / static_cast<double>(ndecode);
      kv_peak_tokens = std::max(
          kv_peak_tokens, static_cast<double>(scheduler.reserved_kv_tokens()));

      StepBreakdown d = decode_step_resolved(r, ndecode, avg_ctx);
      double speedup = 1.0;
      if (cfg.speculative && draft) {
        const auto& sp = *cfg.speculative;
        const double base_alpha = sp.base_acceptance > 0
                                      ? sp.base_acceptance
                                      : default_draft_acceptance(r.model);
        const double alpha = std::clamp(
            base_alpha *
                (1.0 - sp.acceptance_decay *
                           std::min(1.0, avg_ctx / sp.acceptance_decay_ref_ctx)),
            0.05, 0.95);
        const double accepted = expected_accepted(alpha, sp.lookahead);
        const StepBreakdown dstep = decode_step_resolved(*draft, ndecode, avg_ctx);
        // Verification: k+1 tokens per sequence through the target model;
        // KV is read once, weights are touched by batch*(k+1) tokens (the
        // MoE activation spread that kills SD for Mixtral).
        StepBreakdown verify = d;
        const double k1 = sp.lookahead + 1.0;
        const double extra_flops =
            ndecode * (k1 - 1.0) *
            (r.costs.linear_flops_per_token() + r.costs.lm_head_flops()) /
            (cfg.plan.tp * cfg.plan.ep);
        const double extra_weights =
            (r.costs.weight_bytes_touched(ndecode * static_cast<std::int64_t>(k1)) -
             r.costs.weight_bytes_touched(ndecode)) /
            (cfg.plan.tp * cfg.plan.ep);
        hw::Efficiency eff = r.eff;
        verify.compute_s += r.device.compute_time_s(extra_flops, eff,
                                                    static_cast<double>(ndecode) * k1);
        verify.memory_s += r.device.memory_time_s(extra_weights, eff);
        verify.total_s = combine_roofline(r.device, verify.compute_s, verify.memory_s,
                                          static_cast<double>(ndecode)) +
                         verify.comm_s + verify.host_s;
        const double cycle = sp.lookahead * dstep.total_s + verify.total_s;
        speedup = std::max(0.2, accepted * d.total_s / cycle);
      }
      d.total_s /= speedup;
      obs::emit_span("sim.decode", obs::Cat::kSim, now, d.total_s, track, ndecode);
      emit_comm_phases(d, now);
      res.phases.decode_s += d.total_s;
      res.phases.compute_s += d.compute_s;
      res.phases.memory_s += d.memory_s;
      res.phases.comm_s += d.comm_s;
      res.phases.host_s += d.host_s;
      ++res.phases.decode_steps;
      now += d.total_s;
      spec_speedup_weighted += speedup * d.total_s;
      spec_time += d.total_s;

      const double flops =
          ndecode *
          (r.costs.linear_flops_per_token() + r.costs.attention_flops_per_token(avg_ctx) +
           r.costs.lm_head_flops()) /
          (cfg.plan.tp * cfg.plan.ep);
      const double bytes = r.costs.weight_bytes_touched(ndecode) / (cfg.plan.tp * cfg.plan.ep);
      account(d, flops, bytes);
      for (sched::RequestId id : plan.decodes) scheduler.complete_decode_token(id);
    }
  }

  // ---- Metrics -------------------------------------------------------------
  res.status = RunStatus::kOk;
  res.phases.iterations = iterations;
  // Global accumulation uses integer nanoseconds: integer adds commute, so
  // pool-backed sweep totals are bit-identical to serial execution.
  {
    static obs::Counter& c_iter = obs::Registry::global().counter("sim.iterations");
    static obs::Counter& c_pre = obs::Registry::global().counter("sim.prefill_steps");
    static obs::Counter& c_dec = obs::Registry::global().counter("sim.decode_steps");
    static obs::Counter& c_pre_ns = obs::Registry::global().counter("sim.prefill_ns");
    static obs::Counter& c_dec_ns = obs::Registry::global().counter("sim.decode_ns");
    c_iter.add(iterations);
    c_pre.add(res.phases.prefill_steps);
    c_dec.add(res.phases.decode_steps);
    c_pre_ns.add(std::llround(res.phases.prefill_s * 1e9));
    c_dec_ns.add(std::llround(res.phases.decode_s * 1e9));
  }
  res.e2e_latency_s = now;
  res.ttft_s = ttft_count > 0 ? ttft_sum / static_cast<double>(ttft_count) : 0.0;
  const double total_tokens =
      static_cast<double>(cfg.batch_size) * (cfg.input_tokens + cfg.output_tokens);
  res.throughput_tps = now > 0 ? total_tokens / now : 0.0;
  res.decode_throughput_tps =
      now > 0 ? static_cast<double>(cfg.batch_size) * cfg.output_tokens / now : 0.0;
  if (cfg.output_tokens > 1) {
    // Paper eq. (1).
    res.itl_s = (res.e2e_latency_s - res.ttft_s) /
                (static_cast<double>(cfg.batch_size) * (cfg.output_tokens - 1));
  }
  res.energy_j = energy;
  res.average_power_w = now > 0 ? energy / now : 0.0;
  res.tokens_per_sec_per_watt =
      res.average_power_w > 0 ? res.throughput_tps / res.average_power_w : 0.0;
  res.waves = scheduler.waves();
  res.kv_peak_bytes_per_device = kv_peak_tokens * r.kv_bytes_per_token_device;
  res.avg_compute_util = now > 0 ? util_c_weighted / now : 0.0;
  res.avg_memory_util = now > 0 ? util_m_weighted / now : 0.0;
  res.speculative_speedup = spec_time > 0 ? spec_speedup_weighted / spec_time : 1.0;
  return res;
}

}  // namespace llmib::sim
