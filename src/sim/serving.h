#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.h"
#include "fault/resilience.h"
#include "obs/snapshot.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace llmib::sim {

/// An online serving workload: requests arrive over time (Poisson process)
/// with randomized prompt/output lengths — the regime continuous batching
/// exists for (paper §IV-A.1: "requests arrive at different times or have
/// different input context lengths").
struct ServingWorkload {
  double arrival_rate_rps = 1.0;   ///< mean request arrival rate
  std::int64_t num_requests = 64;
  std::int64_t prompt_min = 64, prompt_max = 512;
  std::int64_t output_min = 32, output_max = 256;
  std::uint64_t seed = 1234;
  /// Service-level objective on per-request TTFT (0 = no SLO). Requests
  /// whose first token arrives later than this are SLO violations; the
  /// fraction that meet it is the goodput.
  double slo_ttft_s = 0.0;
  /// Tokens of a common prompt prefix (system prompt) shared by EVERY
  /// request, included in each prompt length. With SimConfig::prefix_caching
  /// the prefix KV is built once and reused.
  std::int64_t shared_prefix_tokens = 0;
  /// Admission ordering for the waiting queue.
  sched::QueueOrder queue_order = sched::QueueOrder::kFcfs;
  /// Starvation mitigation for kShortestFirst (see Scheduler::Config).
  std::int64_t sjf_aging_tokens_per_round = 0;
  /// Multi-tenant scheduling (default: single-tenant, tenancy bypassed).
  sched::TenancyConfig tenancy;
  /// Fault environment (default: none — fault machinery fully bypassed).
  fault::FaultProfile faults;
  /// Resilience policies (default: none — loop behaves as the policy-free
  /// simulator).
  fault::ResiliencePolicy resilience;
};

/// One concrete request of an online-serving run (also the row type of
/// recorded traces, sim/trace.h).
struct TraceRequest {
  double arrival_s = 0.0;
  std::int64_t prompt_tokens = 0;
  std::int64_t output_tokens = 0;

  // ---- Prefix-sharing annotations (multi-turn chat / agent loops) ----
  /// Requests with the same non-negative group share a prompt prefix (e.g.
  /// one conversation, or one fleet behind a common system prompt). -1 =
  /// ungrouped; with TraceOptions::shared_prefix > 0 ungrouped requests are
  /// treated as one implicit group 0 (legacy single-shared-prefix mode).
  std::int64_t prefix_group = -1;
  /// Tokens at the head of THIS prompt that coincide with the group's shared
  /// context (a per-request claim; the usable match is the minimum of this
  /// and what the cache actually holds — longest-match, not the old global
  /// boolean). Included in prompt_tokens.
  std::int64_t shared_prefix_tokens = 0;
  /// Tokens of this request's context a follow-up may reuse (chat: the full
  /// prompt+output history; flat fleets: just the shared head). -1 = same as
  /// shared_prefix_tokens.
  std::int64_t cacheable_tokens = -1;

  /// Issuing tenant (multi-tenant scheduling, sched/tenant.h). 0 = default
  /// tenant; ignored unless the run declares tenants.
  std::int32_t tenant = 0;
};

/// Achieved load below this fraction of the offered load means the system
/// could not keep up (queue growth dominated service).
inline constexpr double kSaturationHeadroom = 0.95;

/// The one saturation heuristic used everywhere: achieved request rate
/// measurably below offered.
inline bool saturated_load(double achieved_rps, double offered_rps) {
  return offered_rps > 0 && achieved_rps < kSaturationHeadroom * offered_rps;
}

/// Per-tenant outcome of one request, fed to finalize_tenant_metrics. The
/// serving and cluster loops both reduce their per-request tracking into
/// this shape so the fairness metrics have a single definition.
struct TenantOutcome {
  std::int32_t tenant = 0;
  bool completed = false;
  bool shed = false;
  bool timed_out = false;
  bool failed = false;
  bool ttft_recorded = false;
  double ttft_s = 0.0;
  double e2e_s = 0.0;  ///< arrival -> last token (completed requests only)
};

/// Aggregated per-tenant view of a multi-tenant run.
struct TenantMetrics {
  std::int32_t id = 0;
  std::string name;
  sched::SloClass slo = sched::SloClass::kLatencyBound;
  double weight = 1.0;

  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t timed_out = 0;
  std::int64_t failed = 0;

  double ttft_p50_s = 0.0, ttft_p99_s = 0.0;
  double e2e_p50_s = 0.0, e2e_p99_s = 0.0;
  std::int64_t service_tokens = 0;  ///< completed prompt+output tokens
  double throughput_tps = 0.0;      ///< service_tokens / makespan
  double utilization = 0.0;         ///< share of all completed service tokens

  /// Fraction of SUBMITTED requests that met the tenant's SLO: latency-bound
  /// tenants need completion with TTFT within slo_ttft_s (falling back to
  /// the run default); throughput-bound tenants need completion within
  /// slo_e2e_s (no e2e SLO set => any completion counts).
  double slo_attainment = 0.0;

  // Credit-account totals (kFairCredit runs; zero otherwise).
  std::int64_t credits_banked = 0;
  std::int64_t credits_spent = 0;
};

/// Latency/throughput metrics of one online-serving run.
struct ServingMetrics {
  double offered_load_rps = 0.0;    ///< from the workload
  double makespan_s = 0.0;          ///< first arrival -> last resolution
  double achieved_rps = 0.0;        ///< COMPLETED requests / makespan
  double throughput_tps = 0.0;      ///< completed (in+out tokens) / makespan

  // Per-request time-to-first-token, measured from ARRIVAL (includes
  // queueing — the quantity a user experiences).
  double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
  // Per-request end-to-end latency from arrival to last token.
  double e2e_p50_s = 0.0, e2e_p95_s = 0.0, e2e_p99_s = 0.0;
  // Per-token inter-token latency across all decoded tokens.
  double itl_p50_s = 0.0, itl_p95_s = 0.0, itl_p99_s = 0.0;

  std::int64_t max_concurrency = 0;   ///< peak live sequences
  std::int64_t peak_queue_depth = 0;  ///< peak waiting requests
  bool saturated = false;             ///< system could not keep up with load

  // ---- Prefix caching (all zero when disabled) ----
  std::int64_t prefix_lookups = 0;        ///< grouped prefills that consulted the cache
  std::int64_t prefix_hits = 0;           ///< prefills that reused cached prefix KV
  std::int64_t prefix_hit_tokens = 0;     ///< prefill tokens skipped via reuse
  /// Hits whose cached context covered the WHOLE prompt (empty user turn);
  /// one token is still prefilled — explicitly, not via a silent clamp.
  std::int64_t prefix_partial_matches = 0;
  std::int64_t prefix_cache_peak_tokens = 0;  ///< peak resident cached-prefix KV
  /// Peak of scheduler-reserved + cached KV tokens: cached blocks charged
  /// ONCE (ref-counted), not once per resident request borrowing them.
  std::int64_t peak_kv_reserved_tokens = 0;

  /// Fraction of requests that COMPLETED with TTFT within the SLO (1.0 when
  /// no SLO was set) — the goodput metric serving papers optimize. Shed,
  /// timed-out and failed requests count against it.
  double slo_goodput = 1.0;
  /// SLO-meeting completions per second (achieved_rps when no SLO is set).
  double goodput_rps = 0.0;

  // ---- Resilience (all zero / 1.0 on a fault-free, policy-free run) ----
  std::int64_t device_failures = 0;    ///< transient device drops fired
  std::int64_t throttle_episodes = 0;  ///< throttle episodes observed
  std::int64_t fault_evictions = 0;    ///< live sequences killed by failures
  std::int64_t retries = 0;            ///< retry resubmissions scheduled
  std::int64_t shed_requests = 0;      ///< rejected at admission
  std::int64_t timed_out_requests = 0; ///< cancelled past their deadline
  std::int64_t failed_requests = 0;    ///< fault-killed, retries exhausted
  std::int64_t degradation_activations = 0;  ///< healthy->degraded switches
  /// Fraction of all requests that completed.
  double availability = 1.0;
  /// Completion fraction among requests arriving AFTER the last disruption
  /// ended — did service recover once the faults stopped? (1.0 when no
  /// disruption or no such arrivals.)
  double post_fault_availability = 1.0;
  /// Mean time from a device failure to the next token produced by any
  /// request (service-level MTTR; 0 when no failure occurred).
  double mttr_s = 0.0;

  // ---- Multi-tenant fairness (empty / 1.0 on single-tenant runs) ----
  /// Per-tenant breakdown, one row per declared tenant (declaration order).
  std::vector<TenantMetrics> tenants;
  /// Weight-averaged SLO attainment across tenants (1.0 single-tenant).
  double welfare = 1.0;
  /// Jain's fairness index over per-tenant SLO attainment:
  /// J = (sum x)^2 / (N * sum x^2); 1.0 = perfectly fair.
  double jain_fairness = 1.0;

  /// Where the simulated makespan went: prefill/decode/idle split plus the
  /// accumulated roofline terms of every step.
  obs::PhaseBreakdown phases;

  /// The run's metrics as an obs::Snapshot (`serving.*` namespace) — the
  /// uniform reporting surface shared with SimResult and the pool stats.
  obs::Snapshot to_snapshot() const;
};

/// Reduces per-request outcomes into ServingMetrics::tenants / welfare /
/// jain_fairness. Shared by the serving simulator and the cluster loop so
/// the fairness metrics have one definition. No-op when `tenancy` declares
/// no tenants. `reqs` and `outcomes` are parallel arrays;
/// `default_slo_ttft_s` is the run-level TTFT SLO a tenant's slo_ttft_s = 0
/// falls back to. Credit fields are left zero — callers fill them from the
/// scheduler's allocator afterwards.
void finalize_tenant_metrics(const std::vector<TraceRequest>& reqs,
                             const std::vector<TenantOutcome>& outcomes,
                             const sched::TenancyConfig& tenancy,
                             double makespan_s, double default_slo_ttft_s,
                             ServingMetrics* metrics);

/// Per-trace-run options beyond the request list itself. Defaults reproduce
/// the historical `run_trace(base, reqs)` behavior exactly.
struct TraceOptions {
  double slo_ttft_s = 0.0;
  std::int64_t shared_prefix = 0;
  sched::QueueOrder order = sched::QueueOrder::kFcfs;
  std::int64_t sjf_aging_tokens_per_round = 0;
  sched::TenancyConfig tenancy;
  fault::FaultProfile faults;
  fault::ResiliencePolicy resilience;
};

/// Discrete-event online-serving simulator built on top of the per-step
/// cost model of InferenceSimulator. `base` supplies the (model, hw,
/// framework, precision, plan) point; its batch/length fields are ignored
/// in favor of the workload's arrivals.
class ServingSimulator {
 public:
  explicit ServingSimulator(const InferenceSimulator& simulator);

  /// Runs the workload to completion. Throws util::ContractViolation for
  /// malformed configs; returns unsupported/OOM conditions the same way
  /// InferenceSimulator::run does (check `ok`).
  struct Result {
    RunStatus status = RunStatus::kOk;
    std::string status_detail;
    ServingMetrics metrics;
    bool ok() const { return status == RunStatus::kOk; }
  };
  Result run(const SimConfig& base, const ServingWorkload& workload) const;

  /// Replay a concrete request list (e.g. a recorded trace). Requests must
  /// be sorted by arrival with positive token counts. `opts.shared_prefix`
  /// tokens at the head of every prompt are prefix-cached when the config
  /// enables it. With a fault profile the run is still deterministic: same
  /// trace + same options => identical metrics.
  Result run_trace(const SimConfig& base,
                   const std::vector<TraceRequest>& requests,
                   const TraceOptions& opts) const;

  /// Legacy convenience overload.
  Result run_trace(const SimConfig& base,
                   const std::vector<TraceRequest>& requests,
                   double slo_ttft_s = 0.0, std::int64_t shared_prefix = 0,
                   sched::QueueOrder order = sched::QueueOrder::kFcfs) const {
    TraceOptions opts;
    opts.slo_ttft_s = slo_ttft_s;
    opts.shared_prefix = shared_prefix;
    opts.order = order;
    return run_trace(base, requests, opts);
  }

 private:
  const InferenceSimulator& sim_;
};

}  // namespace llmib::sim
