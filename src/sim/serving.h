#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace llmib::sim {

/// An online serving workload: requests arrive over time (Poisson process)
/// with randomized prompt/output lengths — the regime continuous batching
/// exists for (paper §IV-A.1: "requests arrive at different times or have
/// different input context lengths").
struct ServingWorkload {
  double arrival_rate_rps = 1.0;   ///< mean request arrival rate
  std::int64_t num_requests = 64;
  std::int64_t prompt_min = 64, prompt_max = 512;
  std::int64_t output_min = 32, output_max = 256;
  std::uint64_t seed = 1234;
  /// Service-level objective on per-request TTFT (0 = no SLO). Requests
  /// whose first token arrives later than this are SLO violations; the
  /// fraction that meet it is the goodput.
  double slo_ttft_s = 0.0;
  /// Tokens of a common prompt prefix (system prompt) shared by EVERY
  /// request, included in each prompt length. With SimConfig::prefix_caching
  /// the prefix KV is built once and reused.
  std::int64_t shared_prefix_tokens = 0;
  /// Admission ordering for the waiting queue.
  sched::QueueOrder queue_order = sched::QueueOrder::kFcfs;
};

/// One concrete request of an online-serving run (also the row type of
/// recorded traces, sim/trace.h).
struct TraceRequest {
  double arrival_s = 0.0;
  std::int64_t prompt_tokens = 0;
  std::int64_t output_tokens = 0;
};

/// Latency/throughput metrics of one online-serving run.
struct ServingMetrics {
  double offered_load_rps = 0.0;    ///< from the workload
  double makespan_s = 0.0;          ///< first arrival -> last completion
  double achieved_rps = 0.0;        ///< completed requests / makespan
  double throughput_tps = 0.0;      ///< (in+out tokens) / makespan

  // Per-request time-to-first-token, measured from ARRIVAL (includes
  // queueing — the quantity a user experiences).
  double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
  // Per-request end-to-end latency from arrival to last token.
  double e2e_p50_s = 0.0, e2e_p95_s = 0.0, e2e_p99_s = 0.0;

  std::int64_t max_concurrency = 0;   ///< peak live sequences
  std::int64_t peak_queue_depth = 0;  ///< peak waiting requests
  bool saturated = false;             ///< system could not keep up with load

  /// Fraction of requests whose TTFT met the workload's SLO (1.0 when no
  /// SLO was set) — the goodput metric serving papers optimize.
  double slo_goodput = 1.0;
};

/// Discrete-event online-serving simulator built on top of the per-step
/// cost model of InferenceSimulator. `base` supplies the (model, hw,
/// framework, precision, plan) point; its batch/length fields are ignored
/// in favor of the workload's arrivals.
class ServingSimulator {
 public:
  explicit ServingSimulator(const InferenceSimulator& simulator);

  /// Runs the workload to completion. Throws util::ContractViolation for
  /// malformed configs; returns unsupported/OOM conditions the same way
  /// InferenceSimulator::run does (check `ok`).
  struct Result {
    RunStatus status = RunStatus::kOk;
    std::string status_detail;
    ServingMetrics metrics;
    bool ok() const { return status == RunStatus::kOk; }
  };
  Result run(const SimConfig& base, const ServingWorkload& workload) const;

  /// Replay a concrete request list (e.g. a recorded trace). Requests must
  /// be sorted by arrival with positive token counts. `shared_prefix`
  /// tokens at the head of every prompt are prefix-cached when the config
  /// enables it; `order` selects the admission policy.
  Result run_trace(const SimConfig& base,
                   const std::vector<TraceRequest>& requests,
                   double slo_ttft_s = 0.0, std::int64_t shared_prefix = 0,
                   sched::QueueOrder order = sched::QueueOrder::kFcfs) const;

 private:
  const InferenceSimulator& sim_;
};

}  // namespace llmib::sim
