#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/serving.h"

namespace llmib::sim {

/// A replayable request trace: arrivals + shapes, persisted as CSV
/// ("arrival_s,prompt_tokens,output_tokens"). The paper's artifact drives
/// its benchmarks from fixed request sets; traces make the online-serving
/// simulator reproducible the same way — record a synthetic workload once,
/// replay it against any (model, hw, framework) point.
class RequestTrace {
 public:
  RequestTrace() = default;
  explicit RequestTrace(std::vector<TraceRequest> requests);  ///< validates

  /// Materialize the Poisson workload into a concrete trace (same RNG path
  /// as ServingSimulator::run, so replaying it is bit-identical).
  static RequestTrace from_workload(const ServingWorkload& workload);

  /// Parse from CSV text (header optional). Throws on malformed rows.
  static RequestTrace parse_csv(std::istream& in);
  static RequestTrace parse_csv_text(const std::string& text);

  /// Serialize to CSV with header.
  void write_csv(std::ostream& out) const;
  std::string to_csv_text() const;

  const std::vector<TraceRequest>& requests() const { return requests_; }
  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }

  /// Mean offered load implied by the trace (requests / arrival span).
  double offered_load_rps() const;
  /// Total prompt+output tokens across the trace.
  std::int64_t total_tokens() const;
  double max_prompt() const;
  double max_output() const;

 private:
  void validate() const;
  std::vector<TraceRequest> requests_;
};

/// Replay a trace against one configuration point. `slo_ttft_s` as in
/// ServingWorkload (0 = no SLO).
ServingSimulator::Result replay_trace(const ServingSimulator& serving,
                                      const SimConfig& base,
                                      const RequestTrace& trace,
                                      double slo_ttft_s = 0.0);

}  // namespace llmib::sim
