#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.h"

namespace llmib::sim {

/// Multi-turn chat workload: conversations start as a Poisson process; each
/// turn's prompt replays the whole history (system prompt + every prior
/// user/assistant exchange) plus a fresh user message. With prefix caching
/// the replayed history is a radix-cache hit, so per-turn prefill cost stays
/// flat instead of growing linearly with conversation depth — the serving
/// pattern SGLang's RadixAttention targets.
struct ChatScenario {
  std::int64_t conversations = 8;
  std::int64_t turns_min = 3, turns_max = 6;
  /// System-prompt tokens at the head of every turn-0 prompt.
  std::int64_t system_prompt_tokens = 128;
  /// Fresh user-message tokens appended each turn. `user_turn_min` may be 0:
  /// an empty user turn (prompt == cached history) exercises the explicit
  /// partial-match path.
  std::int64_t user_turn_min = 16, user_turn_max = 64;
  std::int64_t output_min = 32, output_max = 128;
  /// Poisson rate of NEW conversations starting.
  double start_rate_rps = 0.5;
  /// Mean think time between a turn's arrival and the next turn of the same
  /// conversation (exponential). Large enough by default that the prior turn
  /// usually completes first, making its history cache-resident.
  double think_time_mean_s = 4.0;
  std::uint64_t seed = 2024;
};

/// Agent loop workload: like chat, but each "turn" is one tool-call round —
/// many short steps in quick succession, each replaying the full scratchpad.
/// Higher turn counts and shorter gaps than chat; the regime where prefix
/// reuse dominates total prefill work.
struct AgentLoopScenario {
  std::int64_t agents = 4;
  std::int64_t steps_min = 6, steps_max = 12;
  std::int64_t system_prompt_tokens = 256;
  /// Tool-output tokens injected into the prompt each step.
  std::int64_t tool_output_min = 32, tool_output_max = 128;
  /// Model turn per step (thought + next tool call) — short.
  std::int64_t output_min = 16, output_max = 64;
  double start_rate_rps = 0.25;
  /// Mean gap between consecutive steps (tool execution time).
  double step_gap_mean_s = 0.5;
  std::uint64_t seed = 4242;
};

/// One tenant's Poisson arrival stream within a multi-tenant mix. A tenant
/// may own several streams (e.g. a steady baseline plus a burst window).
struct TenantStream {
  std::int32_t tenant = 0;
  double rate_rps = 1.0;
  std::int64_t num_requests = 32;
  std::int64_t prompt_min = 64, prompt_max = 256;
  std::int64_t output_min = 32, output_max = 128;
  /// Arrivals begin at this offset (burst windows start late).
  double start_s = 0.0;
};

/// Materialize a multi-tenant request mix: each stream draws its arrivals
/// and lengths from its own decorrelated RNG (adding a stream never perturbs
/// the others), then everything is merged by arrival time with a stable
/// tie-break on stream order — fully deterministic for a given seed.
std::vector<TraceRequest> multi_tenant_trace(
    const std::vector<TenantStream>& streams, std::uint64_t seed);

/// Materialize a chat scenario into a replayable trace. Each conversation is
/// one prefix group; turn t claims the full prior context
/// (prompt_{t-1} + output_{t-1}) and marks its own prompt+output cacheable.
/// Requests are merged across conversations and sorted by arrival.
RequestTrace chat_trace(const ChatScenario& scenario);

/// Materialize an agent-loop scenario (same trace semantics as chat_trace).
RequestTrace agent_loop_trace(const AgentLoopScenario& scenario);

/// Fraction of all prompt tokens covered by prefix claims — the "share
/// ratio" axis of the prefix-cache ablation. Upper bound on the hit-token
/// fraction an ideal cache could deliver.
double trace_share_ratio(const std::vector<TraceRequest>& requests);

}  // namespace llmib::sim
