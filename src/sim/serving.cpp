#include "sim/serving.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "frameworks/traits.h"
#include "obs/obs.h"
#include "sched/scheduler.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace llmib::sim {

using util::require;

namespace {

double quantile_or_zero(const std::vector<double>& sorted, double q) {
  return sorted.empty() ? 0.0 : util::quantile_sorted(sorted, q);
}

}  // namespace

obs::Snapshot ServingMetrics::to_snapshot() const {
  obs::Snapshot snap;
  snap.set_gauge("serving.offered_load_rps", offered_load_rps);
  snap.set_gauge("serving.makespan_s", makespan_s);
  snap.set_gauge("serving.achieved_rps", achieved_rps);
  snap.set_gauge("serving.throughput_tps", throughput_tps);
  snap.set_gauge("serving.ttft_p50_s", ttft_p50_s);
  snap.set_gauge("serving.ttft_p95_s", ttft_p95_s);
  snap.set_gauge("serving.ttft_p99_s", ttft_p99_s);
  snap.set_gauge("serving.e2e_p50_s", e2e_p50_s);
  snap.set_gauge("serving.e2e_p95_s", e2e_p95_s);
  snap.set_gauge("serving.e2e_p99_s", e2e_p99_s);
  snap.set_gauge("serving.itl_p50_s", itl_p50_s);
  snap.set_gauge("serving.itl_p95_s", itl_p95_s);
  snap.set_gauge("serving.itl_p99_s", itl_p99_s);
  snap.set_gauge("serving.slo_goodput", slo_goodput);
  snap.set_gauge("serving.goodput_rps", goodput_rps);
  snap.set_gauge("serving.availability", availability);
  snap.set_gauge("serving.post_fault_availability", post_fault_availability);
  snap.set_gauge("serving.mttr_s", mttr_s);
  snap.set_counter("serving.max_concurrency", max_concurrency);
  snap.set_counter("serving.peak_queue_depth", peak_queue_depth);
  snap.set_counter("serving.saturated", saturated ? 1 : 0);
  snap.set_counter("serving.prefix_lookups", prefix_lookups);
  snap.set_counter("serving.prefix_hits", prefix_hits);
  snap.set_counter("serving.prefix_hit_tokens", prefix_hit_tokens);
  snap.set_counter("serving.prefix_partial_matches", prefix_partial_matches);
  snap.set_counter("serving.prefix_cache_peak_tokens", prefix_cache_peak_tokens);
  snap.set_counter("serving.peak_kv_reserved_tokens", peak_kv_reserved_tokens);
  snap.set_counter("serving.device_failures", device_failures);
  snap.set_counter("serving.throttle_episodes", throttle_episodes);
  snap.set_counter("serving.fault_evictions", fault_evictions);
  snap.set_counter("serving.retries", retries);
  snap.set_counter("serving.shed_requests", shed_requests);
  snap.set_counter("serving.timed_out_requests", timed_out_requests);
  snap.set_counter("serving.failed_requests", failed_requests);
  snap.set_counter("serving.degradation_activations", degradation_activations);
  // Per-tenant keys only exist on multi-tenant runs, so single-tenant
  // snapshots stay deterministically equal to the pre-tenancy ones.
  if (!tenants.empty()) {
    snap.set_gauge("serving.welfare", welfare);
    snap.set_gauge("serving.jain_fairness", jain_fairness);
    for (const TenantMetrics& t : tenants) {
      const std::string p = "serving.tenant" + std::to_string(t.id) + ".";
      snap.set_counter(p + "submitted", t.submitted);
      snap.set_counter(p + "completed", t.completed);
      snap.set_counter(p + "shed", t.shed);
      snap.set_counter(p + "timed_out", t.timed_out);
      snap.set_counter(p + "failed", t.failed);
      snap.set_counter(p + "service_tokens", t.service_tokens);
      snap.set_counter(p + "credits_banked", t.credits_banked);
      snap.set_counter(p + "credits_spent", t.credits_spent);
      snap.set_gauge(p + "ttft_p50_s", t.ttft_p50_s);
      snap.set_gauge(p + "ttft_p99_s", t.ttft_p99_s);
      snap.set_gauge(p + "e2e_p50_s", t.e2e_p50_s);
      snap.set_gauge(p + "e2e_p99_s", t.e2e_p99_s);
      snap.set_gauge(p + "throughput_tps", t.throughput_tps);
      snap.set_gauge(p + "utilization", t.utilization);
      snap.set_gauge(p + "slo_attainment", t.slo_attainment);
    }
  }
  phases.export_into(snap, "serving.phase");
  return snap;
}

void finalize_tenant_metrics(const std::vector<TraceRequest>& reqs,
                             const std::vector<TenantOutcome>& outcomes,
                             const sched::TenancyConfig& tenancy,
                             double makespan_s, double default_slo_ttft_s,
                             ServingMetrics* metrics) {
  if (tenancy.tenants.empty()) return;
  require(reqs.size() == outcomes.size(),
          "finalize_tenant_metrics: reqs/outcomes size mismatch");
  metrics->tenants.clear();
  std::int64_t all_service_tokens = 0;
  for (const sched::TenantSpec& spec : tenancy.tenants) {
    TenantMetrics tm;
    tm.id = spec.id;
    tm.name = spec.name;
    tm.slo = spec.slo;
    tm.weight = spec.weight;
    const double slo_ttft =
        spec.slo_ttft_s > 0 ? spec.slo_ttft_s : default_slo_ttft_s;
    std::vector<double> ttfts, e2es;
    std::int64_t met = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].tenant != spec.id) continue;
      const TenantOutcome& o = outcomes[i];
      ++tm.submitted;
      tm.completed += o.completed;
      tm.shed += o.shed;
      tm.timed_out += o.timed_out;
      tm.failed += o.failed;
      if (o.ttft_recorded) ttfts.push_back(o.ttft_s);
      if (o.completed) {
        e2es.push_back(o.e2e_s);
        tm.service_tokens += reqs[i].prompt_tokens + reqs[i].output_tokens;
        if (spec.slo == sched::SloClass::kLatencyBound) {
          met += slo_ttft <= 0 || (o.ttft_recorded && o.ttft_s <= slo_ttft);
        } else {
          met += spec.slo_e2e_s <= 0 || o.e2e_s <= spec.slo_e2e_s;
        }
      }
    }
    std::sort(ttfts.begin(), ttfts.end());
    std::sort(e2es.begin(), e2es.end());
    tm.ttft_p50_s = quantile_or_zero(ttfts, 0.50);
    tm.ttft_p99_s = quantile_or_zero(ttfts, 0.99);
    tm.e2e_p50_s = quantile_or_zero(e2es, 0.50);
    tm.e2e_p99_s = quantile_or_zero(e2es, 0.99);
    tm.throughput_tps =
        makespan_s > 0 ? static_cast<double>(tm.service_tokens) / makespan_s
                       : 0.0;
    tm.slo_attainment =
        tm.submitted > 0
            ? static_cast<double>(met) / static_cast<double>(tm.submitted)
            : 0.0;
    all_service_tokens += tm.service_tokens;
    metrics->tenants.push_back(std::move(tm));
  }
  double weight_sum = 0, welfare = 0, att_sum = 0, att_sq = 0;
  for (TenantMetrics& tm : metrics->tenants) {
    tm.utilization =
        all_service_tokens > 0
            ? static_cast<double>(tm.service_tokens) /
                  static_cast<double>(all_service_tokens)
            : 0.0;
    weight_sum += tm.weight;
    welfare += tm.weight * tm.slo_attainment;
    att_sum += tm.slo_attainment;
    att_sq += tm.slo_attainment * tm.slo_attainment;
  }
  metrics->welfare = weight_sum > 0 ? welfare / weight_sum : 1.0;
  const auto n = static_cast<double>(metrics->tenants.size());
  metrics->jain_fairness =
      att_sq > 0 ? att_sum * att_sum / (n * att_sq) : 1.0;
}

ServingSimulator::ServingSimulator(const InferenceSimulator& simulator)
    : sim_(simulator) {}

ServingSimulator::Result ServingSimulator::run(const SimConfig& base,
                                               const ServingWorkload& wl) const {
  require(wl.arrival_rate_rps > 0, "ServingSimulator: arrival rate must be positive");
  require(wl.num_requests > 0, "ServingSimulator: need at least one request");
  require(wl.prompt_min > 0 && wl.prompt_min <= wl.prompt_max,
          "ServingSimulator: bad prompt length range");
  require(wl.output_min > 0 && wl.output_min <= wl.output_max,
          "ServingSimulator: bad output length range");

  // Materialize the Poisson arrivals, then replay as a trace.
  util::Rng rng(wl.seed);
  std::vector<TraceRequest> reqs(static_cast<std::size_t>(wl.num_requests));
  double t = 0;
  for (auto& r : reqs) {
    t += rng.exponential(wl.arrival_rate_rps);
    r.arrival_s = t;
    r.prompt_tokens = rng.uniform_int(wl.prompt_min, wl.prompt_max);
    r.output_tokens = rng.uniform_int(wl.output_min, wl.output_max);
  }
  TraceOptions opts;
  opts.slo_ttft_s = wl.slo_ttft_s;
  opts.shared_prefix = wl.shared_prefix_tokens;
  opts.order = wl.queue_order;
  opts.sjf_aging_tokens_per_round = wl.sjf_aging_tokens_per_round;
  opts.tenancy = wl.tenancy;
  opts.faults = wl.faults;
  opts.resilience = wl.resilience;
  Result res = run_trace(base, reqs, opts);
  // Report the workload's nominal rate rather than the trace-derived one.
  if (res.ok()) {
    res.metrics.offered_load_rps = wl.arrival_rate_rps;
    res.metrics.saturated =
        saturated_load(res.metrics.achieved_rps, wl.arrival_rate_rps);
  }
  return res;
}

ServingSimulator::Result ServingSimulator::run_trace(
    const SimConfig& base, const std::vector<TraceRequest>& reqs,
    const TraceOptions& opts) const {
  require(!reqs.empty(), "ServingSimulator: empty trace");
  require(opts.shared_prefix >= 0, "ServingSimulator: negative shared prefix");
  const std::int64_t shared_prefix = opts.shared_prefix;
  std::int64_t max_prompt = 0, max_output = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    require(reqs[i].prompt_tokens > 0 && reqs[i].output_tokens > 0,
            "ServingSimulator: trace rows need positive token counts");
    require(i == 0 || reqs[i].arrival_s >= reqs[i - 1].arrival_s,
            "ServingSimulator: trace must be sorted by arrival");
    require(reqs[i].shared_prefix_tokens >= 0,
            "ServingSimulator: negative per-request shared prefix");
    require(reqs[i].cacheable_tokens >= -1,
            "ServingSimulator: cacheable_tokens must be >= -1");
    require(reqs[i].tenant >= 0, "ServingSimulator: negative tenant id");
    max_prompt = std::max(max_prompt, reqs[i].prompt_tokens);
    max_output = std::max(max_output, reqs[i].output_tokens);
  }

  Result res;
  // Probe the configuration once for support/capacity; the largest request
  // must be feasible.
  SimConfig probe = base;
  probe.batch_size = 1;
  probe.input_tokens = max_prompt;
  probe.output_tokens = max_output;
  {
    const SimResult pr = sim_.run(probe);
    if (!pr.ok()) {
      res.status = pr.status;
      res.status_detail = pr.status_detail;
      return res;
    }
  }
  const double first_arrival = reqs.front().arrival_s;

  // ---- Scheduler ----------------------------------------------------------
  const auto& fw = sim_.frameworks().get(base.framework);
  sched::Scheduler::Config scfg;
  scfg.policy = fw.continuous_batching ? sched::BatchPolicy::kContinuous
                                       : sched::BatchPolicy::kStatic;
  scfg.max_batch = base.max_concurrent > 0 ? base.max_concurrent : 64;
  // Byte-denominated KV pool: capacity is a fixed number of device bytes,
  // and admission divides by the CURRENT bytes-per-token. This is what lets
  // a mid-run FP8 degradation switch admit more residents from the same
  // pool — the pool does not grow, each token just costs fewer bytes.
  const auto kv_cap_tokens =
      static_cast<std::int64_t>(sim_.kv_capacity_tokens(probe));
  const std::int64_t kv_bpt =
      std::llround(sim_.kv_bytes_per_token_device(probe));
  scfg.kv = kv_cap_tokens > 0 && kv_bpt > 0
                ? sched::KvBudget::bytes(kv_cap_tokens * kv_bpt, kv_bpt)
                : sched::KvBudget::tokens(kv_cap_tokens);
  scfg.reservation_frac = fw.conservative_admission ? 1.0 : 0.25;
  scfg.order = opts.order;
  scfg.sjf_aging_tokens_per_round = opts.sjf_aging_tokens_per_round;
  scfg.tenancy = opts.tenancy;
  const std::int64_t base_max_batch = scfg.max_batch;
  sched::Scheduler scheduler(scfg);

  // ---- Prefix-cache model ---------------------------------------------------
  // Per-group longest-match semantics (the analytic mirror of the engine's
  // radix index): each prefix group tracks how many tokens of its shared
  // context are cached; a prefill's discount is the MINIMUM of the request's
  // own claim and what the cache actually holds at that moment. The cache
  // grows only when a prefill COMPLETES (or a request finishes, extending the
  // conversation history) — never from merely planning one — so concurrent
  // first-wave prefills pay full price.
  struct PrefixInfo {
    std::int64_t group = -1;
    std::int64_t claim = 0;      ///< reusable head of THIS prompt
    std::int64_t cacheable = 0;  ///< context a follow-up may reuse
  };
  std::vector<PrefixInfo> pinfo(reqs.size());
  bool any_group = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto& r = reqs[i];
    auto& p = pinfo[i];
    if (r.prefix_group >= 0) {
      p.group = r.prefix_group;
      p.claim = std::min(r.shared_prefix_tokens, r.prompt_tokens);
      p.cacheable = r.cacheable_tokens < 0
                        ? p.claim
                        : std::min(r.cacheable_tokens,
                                   r.prompt_tokens + r.output_tokens);
    } else if (shared_prefix > 0) {
      // Legacy single-shared-prefix mode: every ungrouped request is one
      // implicit group sharing `shared_prefix` head tokens.
      p.group = 0;
      p.claim = std::min(shared_prefix, r.prompt_tokens);
      p.cacheable = p.claim;
    }
    any_group = any_group || p.group >= 0;
  }
  const bool caching = base.prefix_caching && any_group;
  std::map<std::int64_t, std::int64_t> cached_len;  ///< group -> cached tokens
  std::int64_t cache_total = 0;
  std::int64_t prefix_cache_peak = 0, peak_kv_reserved = 0;
  std::int64_t prefix_lookups = 0, prefix_hits = 0, prefix_hit_tokens = 0;
  std::int64_t prefix_partial = 0;

  // Usable match right now for request i prefilling cur_prompt tokens: at
  // least one token always prefills (partial-match cap at cur_prompt - 1).
  const auto current_match = [&](std::size_t i,
                                 std::int64_t cur_prompt) -> std::int64_t {
    if (!caching || pinfo[i].group < 0) return 0;
    const auto it = cached_len.find(pinfo[i].group);
    if (it == cached_len.end()) return 0;
    const std::int64_t avail = std::min(it->second, pinfo[i].claim);
    return std::clamp<std::int64_t>(avail, 0,
                                    std::max<std::int64_t>(0, cur_prompt - 1));
  };
  // Raw availability (uncapped) — used to detect whole-prompt coverage.
  const auto raw_avail = [&](std::size_t i) -> std::int64_t {
    if (!caching || pinfo[i].group < 0) return 0;
    const auto it = cached_len.find(pinfo[i].group);
    return it == cached_len.end() ? 0 : std::min(it->second, pinfo[i].claim);
  };
  // Record `context_len` tokens of group context as cached. Monotone per
  // group; the scheduler sees the cache's footprint ONCE via the external
  // reservation (ref-counted blocks, not per-request copies).
  const auto cache_populate = [&](std::size_t i, std::int64_t context_len) {
    if (!caching || pinfo[i].group < 0) return;
    const std::int64_t len = std::min(pinfo[i].cacheable, context_len);
    auto& cur = cached_len[pinfo[i].group];
    if (len <= cur) return;
    cache_total += len - cur;
    cur = len;
    prefix_cache_peak = std::max(prefix_cache_peak, cache_total);
    scheduler.set_external_reserved_tokens(cache_total);
  };

  SimConfig step_cfg = base;
  step_cfg.batch_size = 1;  // per-step batch passed explicitly below
  step_cfg.input_tokens = max_prompt;
  step_cfg.output_tokens = max_output;
  // Degraded steps trade KV fidelity for memory traffic (fault pressure).
  SimConfig step_cfg_fp8 = step_cfg;
  step_cfg_fp8.kv_precision = hw::Precision::kFP8;
  const std::int64_t kv_bpt_fp8 =
      std::llround(sim_.kv_bytes_per_token_device(step_cfg_fp8));

  // ---- Fault environment & resilience policies ------------------------------
  const fault::FaultProfile& fp = opts.faults;
  const fault::ResiliencePolicy& rp = opts.resilience;
  fault::FaultClock clock(fp);
  fault::DegradationController degrade(rp.degradation);
  const std::uint64_t backoff_seed = fp.seed ^ fault::kBackoffStream;

  enum class Fate { kPending, kCompleted, kShed, kTimedOut, kFailed };
  struct Track {
    Fate fate = Fate::kPending;
    bool in_scheduler = false;
    bool ttft_recorded = false;
    bool awaiting_retry = false;
    double retry_at = 0.0;
    double ttft_s = 0.0;
    double e2e_s = 0.0;            ///< arrival -> last token (on completion)
    int attempts = 0;              ///< retries consumed so far
    std::int64_t progress = 0;     ///< tokens generated before eviction(s)
    std::int64_t cur_prompt = 0;   ///< prompt + recompute on the current attempt
    /// Submit-time cached-prefix estimate, used for the scheduler's KV
    /// reservation discount (the prefill-time discount is recomputed from
    /// the live cache, so a post-submit wipe never yields a phantom hit).
    std::int64_t cached_prefix = 0;
  };
  std::vector<Track> track(reqs.size());

  // ---- Event loop -----------------------------------------------------------
  // Each run claims its own virtual track so concurrent sweep points never
  // interleave their sim-clock spans (only claimed when tracing is live).
  const std::uint32_t sim_track = obs::tracing_enabled() ? obs::claim_sim_track() : 0;
  obs::PhaseBreakdown& phases = res.metrics.phases;
  double now = first_arrival;
  std::size_t next_submit = 0;
  std::size_t completed = 0, shed = 0, timed_out = 0, failed = 0;
  std::size_t resolved = 0;
  std::int64_t retry_waiting = 0;
  std::int64_t total_retries = 0, fault_evictions = 0;
  std::vector<double> ttfts, e2es, itls;
  ttfts.reserve(reqs.size());
  e2es.reserve(reqs.size());
  std::int64_t max_live = 0, peak_queue = 0;
  double total_tokens = 0;
  double step_ewma_s = 0.0;
  std::vector<double> pending_fault_times;  ///< failures awaiting first token
  double mttr_sum = 0.0;
  std::int64_t mttr_count = 0;

  const std::int64_t max_iterations =
      static_cast<std::int64_t>(reqs.size()) * (max_output + 8) *
          (1 + static_cast<std::int64_t>(std::max(0, rp.retry.max_retries))) +
      1024;
  std::int64_t iterations = 0;

  while (resolved < reqs.size()) {
    require(++iterations <= max_iterations, "ServingSimulator: failed to converge");

    // Resubmit fault-killed requests whose backoff expired. Their lost work
    // is recomputed: the new attempt prefills prompt + prior progress.
    if (retry_waiting > 0) {
      for (std::size_t i = 0; i < track.size(); ++i) {
        Track& t = track[i];
        if (!t.awaiting_retry || t.retry_at > now) continue;
        t.awaiting_retry = false;
        --retry_waiting;
        if (rp.deadline_s > 0 && now - reqs[i].arrival_s > rp.deadline_s) {
          t.fate = Fate::kTimedOut;
          ++timed_out;
          ++resolved;
          obs::emit_instant("fault.timeout", obs::Cat::kFault, now, sim_track,
                            static_cast<std::int64_t>(i));
          continue;
        }
        t.cur_prompt = reqs[i].prompt_tokens + t.progress;
        t.cached_prefix = current_match(i, t.cur_prompt);
        scheduler.submit({static_cast<sched::RequestId>(i), t.cur_prompt,
                          std::max<std::int64_t>(1, reqs[i].output_tokens - t.progress),
                          reqs[i].arrival_s, t.cached_prefix,
                          reqs[i].tenant});
        t.in_scheduler = true;
      }
    }

    while (next_submit < reqs.size() && reqs[next_submit].arrival_s <= now) {
      const auto& r = reqs[next_submit];
      Track& t = track[next_submit];
      bool reject = false;
      if (rp.admission.enabled) {
        if (rp.admission.max_queue_depth > 0 &&
            scheduler.waiting_requests() >= rp.admission.max_queue_depth) {
          reject = true;
        }
        double target = rp.admission.target_ttft_s;
        if (target == 0) target = opts.slo_ttft_s > 0 ? opts.slo_ttft_s : rp.deadline_s;
        if (!reject && target > 0 && step_ewma_s > 0) {
          // Admission waves ahead of this arrival, each one iteration deep:
          // a deliberately optimistic queueing-delay floor. If even the
          // floor misses the target, admitting is pointless.
          const double waves =
              std::ceil(static_cast<double>(scheduler.waiting_requests() + 1) /
                        static_cast<double>(base_max_batch));
          if (waves * step_ewma_s > target) reject = true;
        }
      }
      if (reject) {
        t.fate = Fate::kShed;
        ++shed;
        ++resolved;
        obs::emit_instant("fault.shed", obs::Cat::kFault, now, sim_track,
                          static_cast<std::int64_t>(next_submit));
      } else {
        t.cur_prompt = r.prompt_tokens;
        t.cached_prefix = current_match(next_submit, t.cur_prompt);
        scheduler.submit({static_cast<sched::RequestId>(next_submit),
                          r.prompt_tokens, r.output_tokens, r.arrival_s,
                          t.cached_prefix, r.tenant});
        t.in_scheduler = true;
      }
      ++next_submit;
    }

    // Deadline enforcement: cancel requests (queued or live) past their
    // end-to-end budget; their KV is freed immediately.
    if (rp.deadline_s > 0) {
      for (std::size_t i = 0; i < track.size(); ++i) {
        Track& t = track[i];
        if (t.fate != Fate::kPending || !t.in_scheduler) continue;
        if (now - reqs[i].arrival_s > rp.deadline_s) {
          scheduler.cancel(static_cast<sched::RequestId>(i));
          t.in_scheduler = false;
          t.fate = Fate::kTimedOut;
          ++timed_out;
          ++resolved;
          obs::emit_instant("fault.timeout", obs::Cat::kFault, now, sim_track,
                            static_cast<std::int64_t>(i));
        }
      }
    }

    // Device failures: every live sequence loses its KV. The machine is
    // back after the restart delay; victims either retry (backoff, prefill
    // recompute) or fail permanently once retries are exhausted. Queued
    // requests hold no device state and ride the failure out.
    if (fp.enabled()) {
      for (double tf = clock.take_device_failure(now); tf >= 0;
           tf = clock.take_device_failure(now)) {
        now += fp.device_restart_s;
        degrade.on_fault(now);
        pending_fault_times.push_back(tf);
        obs::emit_instant("fault.device_failure", obs::Cat::kFault, tf, sim_track);
        // The restart wiped device memory — the cached prefix KV included.
        // Later prefills recompute it (the old code let a pre-failure cache
        // keep discounting prefills against KV that no longer existed).
        if (caching && !cached_len.empty()) {
          cached_len.clear();
          cache_total = 0;
          scheduler.set_external_reserved_tokens(0);
          obs::emit_instant("sim.prefix_wipe", obs::Cat::kSim, now, sim_track);
        }
        for (std::size_t i = 0; i < track.size(); ++i) {
          Track& t = track[i];
          if (t.fate != Fate::kPending || !t.in_scheduler) continue;
          const auto id = static_cast<sched::RequestId>(i);
          if (!scheduler.is_live(id)) continue;
          t.progress += scheduler.generated_tokens(id);
          scheduler.cancel(id);
          t.in_scheduler = false;
          ++fault_evictions;
          if (t.attempts < rp.retry.max_retries) {
            ++t.attempts;
            ++total_retries;
            t.awaiting_retry = true;
            // Per-request jitter stream: the delay depends only on (seed,
            // request, attempt), never on how many other victims drew first.
            t.retry_at = now + rp.retry.backoff_s(
                                   t.attempts, backoff_seed,
                                   static_cast<std::uint64_t>(i));
            ++retry_waiting;
            obs::emit_instant("fault.retry", obs::Cat::kFault, now, sim_track,
                              static_cast<std::int64_t>(i));
          } else {
            t.fate = Fate::kFailed;
            ++failed;
            ++resolved;
          }
        }
      }
    }

    // Graceful degradation: under fault pressure admit less (and optionally
    // quantize the KV); the controller restores the full batch on its own
    // once the pressure window expires.
    if (rp.degradation.enabled) {
      scheduler.set_max_batch(degrade.max_batch(base_max_batch, now));
      // Quantize-KV degradation shrinks each token's footprint, so the SAME
      // byte pool admits more residents while the window is active.
      if (rp.degradation.quantize_kv && scfg.kv.byte_denominated() &&
          kv_bpt_fp8 > 0) {
        scheduler.set_kv_bytes_per_token(degrade.degraded_at(now) ? kv_bpt_fp8
                                                                  : kv_bpt);
      }
    }
    peak_queue = std::max(peak_queue, scheduler.waiting_requests());

    // Shedding / deadlines / fault kills may have just resolved the last
    // outstanding request — nothing is left to plan.
    if (resolved >= reqs.size()) break;

    const sched::StepPlan plan = scheduler.plan_step();
    if (plan.empty()) {
      // Idle: jump to the next event (arrival or retry becoming due).
      double next_event = std::numeric_limits<double>::infinity();
      if (next_submit < reqs.size()) next_event = reqs[next_submit].arrival_s;
      if (retry_waiting > 0) {
        for (const Track& t : track) {
          if (t.awaiting_retry) next_event = std::min(next_event, t.retry_at);
        }
      }
      require(std::isfinite(next_event), "ServingSimulator: stalled with no work");
      if (next_event > now) phases.idle_s += next_event - now;
      now = std::max(now, next_event);
      continue;
    }
    max_live = std::max(max_live, scheduler.live_sequences());
    peak_kv_reserved = std::max(
        peak_kv_reserved, scheduler.reserved_kv_tokens() + cache_total);
    const double iter_start = now;
    obs::emit_instant("sched.plan", obs::Cat::kSched, now, sim_track,
                      static_cast<std::int64_t>(plan.prefills.size() +
                                                plan.decodes.size()));

    // Throttle derating stretches every step in the episode; sustained
    // throttling also counts as fault pressure for the degradation loop.
    double mult = 1.0;
    if (fp.enabled()) {
      mult = clock.slowdown_at(now);
      if (mult != 1.0) degrade.on_fault(now);
    }
    const bool quantized_step = rp.degradation.enabled &&
                                rp.degradation.quantize_kv &&
                                degrade.degraded_at(now);
    const SimConfig& cur_cfg = quantized_step ? step_cfg_fp8 : step_cfg;
    double iter_dur = 0.0;

    if (!plan.prefills.empty()) {
      double prompt_sum = 0;
      for (auto id : plan.prefills) {
        const Track& t = track[id];
        // Longest-match against the LIVE cache: what this group has actually
        // finished computing, capped by this request's own claim. The cap at
        // cur_prompt - 1 makes short-prompt handling explicit — a prompt
        // fully covered by cached context (empty user turn) still prefills
        // exactly one token to produce its first-output logits.
        const std::int64_t discount = current_match(id, t.cur_prompt);
        if (caching && pinfo[id].group >= 0) ++prefix_lookups;
        if (discount > 0) {
          ++prefix_hits;
          prefix_hit_tokens += discount;
          if (raw_avail(id) >= t.cur_prompt) ++prefix_partial;
        }
        prompt_sum += static_cast<double>(t.cur_prompt - discount);
      }
      const auto mean_prompt = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(prompt_sum / static_cast<double>(plan.prefills.size())));
      const StepBreakdown p = sim_.prefill_step(
          cur_cfg, static_cast<std::int64_t>(plan.prefills.size()), mean_prompt);
      double dur = p.total_s;
      if (mult != 1.0) dur *= mult;
      obs::emit_span("sim.prefill", obs::Cat::kSim, now, dur, sim_track,
                     static_cast<std::int64_t>(plan.prefills.size()));
      phases.prefill_s += dur;
      phases.compute_s += p.compute_s;
      phases.memory_s += p.memory_s;
      phases.comm_s += p.comm_s;
      phases.host_s += p.host_s;
      ++phases.prefill_steps;
      now += dur;
      iter_dur += dur;
      for (auto id : plan.prefills) {
        Track& t = track[id];
        if (!t.ttft_recorded) {
          t.ttft_recorded = true;
          t.ttft_s = now - reqs[id].arrival_s;
          ttfts.push_back(t.ttft_s);
        }
        // The prefill step has COMPLETED (now advanced past it): only now
        // does this request's prompt head become reusable. First-wave
        // prefills above were costed before this point, so concurrent
        // same-group prefills never discount against each other.
        cache_populate(id, t.cur_prompt);
        if (scheduler.complete_decode_token(id)) {
          t.e2e_s = now - reqs[id].arrival_s;
          e2es.push_back(t.e2e_s);
          total_tokens +=
              static_cast<double>(reqs[id].prompt_tokens + reqs[id].output_tokens);
          t.fate = Fate::kCompleted;
          t.in_scheduler = false;
          ++completed;
          ++resolved;
          cache_populate(id, reqs[id].prompt_tokens + reqs[id].output_tokens);
        }
      }
    }

    if (!plan.decodes.empty()) {
      double ctx_sum = 0;
      for (auto id : plan.decodes) ctx_sum += static_cast<double>(scheduler.context_length(id));
      const StepBreakdown d = sim_.decode_step(
          cur_cfg, static_cast<std::int64_t>(plan.decodes.size()),
          ctx_sum / static_cast<double>(plan.decodes.size()));
      double dur = d.total_s;
      if (mult != 1.0) dur *= mult;
      obs::emit_span("sim.decode", obs::Cat::kSim, now, dur, sim_track,
                     static_cast<std::int64_t>(plan.decodes.size()));
      phases.decode_s += dur;
      phases.compute_s += d.compute_s;
      phases.memory_s += d.memory_s;
      phases.comm_s += d.comm_s;
      phases.host_s += d.host_s;
      ++phases.decode_steps;
      now += dur;
      iter_dur += dur;
      for (auto id : plan.decodes) {
        Track& t = track[id];
        itls.push_back(dur);
        if (scheduler.complete_decode_token(id)) {
          t.e2e_s = now - reqs[id].arrival_s;
          e2es.push_back(t.e2e_s);
          total_tokens +=
              static_cast<double>(reqs[id].prompt_tokens + reqs[id].output_tokens);
          t.fate = Fate::kCompleted;
          t.in_scheduler = false;
          ++completed;
          ++resolved;
          // A finished conversation turn extends the group's cacheable
          // context (prompt + fresh output) for the follow-up turn.
          cache_populate(id, reqs[id].prompt_tokens + reqs[id].output_tokens);
        }
      }
    }

    ++phases.iterations;
    obs::emit_span("sim.iteration", obs::Cat::kSim, iter_start, iter_dur, sim_track);

    // This iteration produced tokens: any outstanding failure is repaired
    // (service-level MTTR: failure -> next token from anyone).
    if (!pending_fault_times.empty()) {
      for (double ft : pending_fault_times) {
        mttr_sum += now - ft;
        ++mttr_count;
      }
      pending_fault_times.clear();
    }
    step_ewma_s = step_ewma_s == 0.0 ? iter_dur : 0.9 * step_ewma_s + 0.1 * iter_dur;
  }

  // ---- Metrics ---------------------------------------------------------------
  auto& m = res.metrics;
  const double arrival_span = reqs.back().arrival_s - first_arrival;
  // N arrivals span N-1 inter-arrival gaps: the first request opens the
  // window rather than occupying span time (a single request offers no
  // sustained load).
  m.offered_load_rps =
      reqs.size() > 1 && arrival_span > 0
          ? static_cast<double>(reqs.size() - 1) / arrival_span
          : 0.0;
  m.makespan_s = now - first_arrival;
  m.achieved_rps = m.makespan_s > 0
                       ? static_cast<double>(completed) / m.makespan_s
                       : 0.0;
  m.throughput_tps = m.makespan_s > 0 ? total_tokens / m.makespan_s : 0.0;
  // One sort per sample; the quantile calls reuse it.
  std::sort(ttfts.begin(), ttfts.end());
  std::sort(e2es.begin(), e2es.end());
  std::sort(itls.begin(), itls.end());
  m.ttft_p50_s = quantile_or_zero(ttfts, 0.50);
  m.ttft_p95_s = quantile_or_zero(ttfts, 0.95);
  m.ttft_p99_s = quantile_or_zero(ttfts, 0.99);
  m.e2e_p50_s = quantile_or_zero(e2es, 0.50);
  m.e2e_p95_s = quantile_or_zero(e2es, 0.95);
  m.e2e_p99_s = quantile_or_zero(e2es, 0.99);
  m.itl_p50_s = quantile_or_zero(itls, 0.50);
  m.itl_p95_s = quantile_or_zero(itls, 0.95);
  m.itl_p99_s = quantile_or_zero(itls, 0.99);
  m.max_concurrency = max_live;
  m.peak_queue_depth = peak_queue;
  m.saturated = saturated_load(m.achieved_rps, m.offered_load_rps);
  m.prefix_lookups = prefix_lookups;
  m.prefix_hits = prefix_hits;
  m.prefix_hit_tokens = prefix_hit_tokens;
  m.prefix_partial_matches = prefix_partial;
  m.prefix_cache_peak_tokens = prefix_cache_peak;
  m.peak_kv_reserved_tokens = peak_kv_reserved;
  if (opts.slo_ttft_s > 0) {
    std::size_t met = 0;
    for (const Track& t : track) {
      met += t.fate == Fate::kCompleted && t.ttft_s <= opts.slo_ttft_s;
    }
    m.slo_goodput = static_cast<double>(met) / static_cast<double>(reqs.size());
    m.goodput_rps =
        m.makespan_s > 0 ? static_cast<double>(met) / m.makespan_s : 0.0;
  } else {
    m.goodput_rps = m.achieved_rps;
  }

  m.fault_evictions = fault_evictions;
  m.retries = total_retries;
  m.shed_requests = static_cast<std::int64_t>(shed);
  m.timed_out_requests = static_cast<std::int64_t>(timed_out);
  m.failed_requests = static_cast<std::int64_t>(failed);
  m.degradation_activations = degrade.activations();
  m.availability =
      static_cast<double>(completed) / static_cast<double>(reqs.size());

  if (opts.tenancy.multi_tenant()) {
    std::vector<TenantOutcome> outcomes(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const Track& t = track[i];
      TenantOutcome& o = outcomes[i];
      o.tenant = reqs[i].tenant;
      o.completed = t.fate == Fate::kCompleted;
      o.shed = t.fate == Fate::kShed;
      o.timed_out = t.fate == Fate::kTimedOut;
      o.failed = t.fate == Fate::kFailed;
      o.ttft_recorded = t.ttft_recorded;
      o.ttft_s = t.ttft_s;
      o.e2e_s = t.e2e_s;
    }
    finalize_tenant_metrics(reqs, outcomes, opts.tenancy, m.makespan_s,
                            opts.slo_ttft_s, &m);
    const sched::TenantAllocator& alloc = scheduler.tenant_allocator();
    for (TenantMetrics& tm : m.tenants) {
      const sched::TenantCredit credit = alloc.credits(tm.id);
      tm.credits_banked = credit.banked_total;
      tm.credits_spent = credit.spent_total;
    }
  }

  if (fp.enabled()) {
    m.device_failures = clock.device_failures();
    m.throttle_episodes = clock.throttle_episodes();
    m.mttr_s = mttr_count > 0 ? mttr_sum / static_cast<double>(mttr_count) : 0.0;
    // Did service recover once the disruptions stopped?
    const double horizon = clock.last_disruption_end_s();
    std::int64_t post_n = 0, post_ok = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].arrival_s > horizon) {
        ++post_n;
        post_ok += track[i].fate == Fate::kCompleted;
      }
    }
    m.post_fault_availability =
        post_n > 0 ? static_cast<double>(post_ok) / static_cast<double>(post_n)
                   : 1.0;
  }

  // Global totals in integers (counts and nanoseconds), so pool-backed
  // sweeps aggregate bit-identically to serial execution.
  {
    static obs::Counter& c_iter = obs::Registry::global().counter("serving.iterations");
    static obs::Counter& c_pre = obs::Registry::global().counter("serving.prefill_steps");
    static obs::Counter& c_dec = obs::Registry::global().counter("serving.decode_steps");
    static obs::Counter& c_done = obs::Registry::global().counter("serving.completed");
    static obs::Counter& c_pre_ns = obs::Registry::global().counter("serving.prefill_ns");
    static obs::Counter& c_dec_ns = obs::Registry::global().counter("serving.decode_ns");
    static obs::Counter& c_drop = obs::Registry::global().counter("fault.device_failures");
    static obs::Counter& c_retry = obs::Registry::global().counter("fault.retries");
    static obs::Counter& c_shed = obs::Registry::global().counter("fault.shed");
    static obs::Counter& c_tmo = obs::Registry::global().counter("fault.timeouts");
    // Process-wide namespace deliberately distinct from the run snapshot's
    // serving.prefix_* keys: write_artifacts merges the two, and identical
    // names would double-count.
    static obs::Counter& c_phit = obs::Registry::global().counter("sim.prefix_hits");
    static obs::Counter& c_ptok =
        obs::Registry::global().counter("sim.prefix_hit_tokens");
    c_iter.add(phases.iterations);
    c_pre.add(phases.prefill_steps);
    c_dec.add(phases.decode_steps);
    c_done.add(static_cast<std::int64_t>(completed));
    c_pre_ns.add(std::llround(phases.prefill_s * 1e9));
    c_dec_ns.add(std::llround(phases.decode_s * 1e9));
    c_drop.add(m.device_failures);
    c_retry.add(m.retries);
    c_shed.add(m.shed_requests);
    c_tmo.add(m.timed_out_requests);
    c_phit.add(m.prefix_hits);
    c_ptok.add(m.prefix_hit_tokens);
  }
  return res;
}

}  // namespace llmib::sim
