#include "sim/serving.h"

#include <algorithm>
#include <vector>

#include "frameworks/traits.h"
#include "sched/scheduler.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace llmib::sim {

using util::require;

ServingSimulator::ServingSimulator(const InferenceSimulator& simulator)
    : sim_(simulator) {}

ServingSimulator::Result ServingSimulator::run(const SimConfig& base,
                                               const ServingWorkload& wl) const {
  require(wl.arrival_rate_rps > 0, "ServingSimulator: arrival rate must be positive");
  require(wl.num_requests > 0, "ServingSimulator: need at least one request");
  require(wl.prompt_min > 0 && wl.prompt_min <= wl.prompt_max,
          "ServingSimulator: bad prompt length range");
  require(wl.output_min > 0 && wl.output_min <= wl.output_max,
          "ServingSimulator: bad output length range");

  // Materialize the Poisson arrivals, then replay as a trace.
  util::Rng rng(wl.seed);
  std::vector<TraceRequest> reqs(static_cast<std::size_t>(wl.num_requests));
  double t = 0;
  for (auto& r : reqs) {
    t += rng.exponential(wl.arrival_rate_rps);
    r.arrival_s = t;
    r.prompt_tokens = rng.uniform_int(wl.prompt_min, wl.prompt_max);
    r.output_tokens = rng.uniform_int(wl.output_min, wl.output_max);
  }
  Result res =
      run_trace(base, reqs, wl.slo_ttft_s, wl.shared_prefix_tokens, wl.queue_order);
  // Report the workload's nominal rate rather than the trace-derived one.
  if (res.ok()) {
    res.metrics.offered_load_rps = wl.arrival_rate_rps;
    res.metrics.saturated = res.metrics.achieved_rps < 0.95 * wl.arrival_rate_rps;
  }
  return res;
}

ServingSimulator::Result ServingSimulator::run_trace(
    const SimConfig& base, const std::vector<TraceRequest>& reqs,
    double slo_ttft_s, std::int64_t shared_prefix, sched::QueueOrder order) const {
  require(!reqs.empty(), "ServingSimulator: empty trace");
  require(shared_prefix >= 0, "ServingSimulator: negative shared prefix");
  std::int64_t max_prompt = 0, max_output = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    require(reqs[i].prompt_tokens > 0 && reqs[i].output_tokens > 0,
            "ServingSimulator: trace rows need positive token counts");
    require(i == 0 || reqs[i].arrival_s >= reqs[i - 1].arrival_s,
            "ServingSimulator: trace must be sorted by arrival");
    max_prompt = std::max(max_prompt, reqs[i].prompt_tokens);
    max_output = std::max(max_output, reqs[i].output_tokens);
  }

  Result res;
  // Probe the configuration once for support/capacity; the largest request
  // must be feasible.
  SimConfig probe = base;
  probe.batch_size = 1;
  probe.input_tokens = max_prompt;
  probe.output_tokens = max_output;
  {
    const SimResult pr = sim_.run(probe);
    if (!pr.ok()) {
      res.status = pr.status;
      res.status_detail = pr.status_detail;
      return res;
    }
  }
  const double first_arrival = reqs.front().arrival_s;

  // ---- Scheduler ----------------------------------------------------------
  const auto& fw = sim_.frameworks().get(base.framework);
  sched::Scheduler::Config scfg;
  scfg.policy = fw.continuous_batching ? sched::BatchPolicy::kContinuous
                                       : sched::BatchPolicy::kStatic;
  scfg.max_batch = base.max_concurrent > 0 ? base.max_concurrent : 64;
  scfg.kv_capacity_tokens =
      static_cast<std::int64_t>(sim_.kv_capacity_tokens(probe));
  scfg.reservation_frac = fw.conservative_admission ? 1.0 : 0.25;
  scfg.order = order;
  sched::Scheduler scheduler(scfg);
  // Automatic prefix caching: the shared prefix's KV is computed by the
  // first prefill and reused by every later one.
  const bool caching = base.prefix_caching && shared_prefix > 0;
  bool prefix_cached = false;

  SimConfig step_cfg = base;
  step_cfg.batch_size = 1;  // per-step batch passed explicitly below
  step_cfg.input_tokens = max_prompt;
  step_cfg.output_tokens = max_output;

  // ---- Event loop -----------------------------------------------------------
  double now = first_arrival;
  std::size_t next_submit = 0;
  std::size_t completed = 0;
  std::vector<double> ttfts, e2es;
  ttfts.reserve(reqs.size());
  e2es.reserve(reqs.size());
  std::int64_t max_live = 0, peak_queue = 0;
  double total_tokens = 0;

  const std::int64_t max_iterations =
      static_cast<std::int64_t>(reqs.size()) * (max_output + 8) + 1024;
  std::int64_t iterations = 0;

  while (completed < reqs.size()) {
    require(++iterations <= max_iterations, "ServingSimulator: failed to converge");

    while (next_submit < reqs.size() && reqs[next_submit].arrival_s <= now) {
      const auto& r = reqs[next_submit];
      scheduler.submit({static_cast<sched::RequestId>(next_submit), r.prompt_tokens,
                        r.output_tokens, r.arrival_s});
      ++next_submit;
    }
    peak_queue = std::max(peak_queue, scheduler.waiting_requests());

    const sched::StepPlan plan = scheduler.plan_step();
    if (plan.empty()) {
      // Idle: jump to the next arrival.
      require(next_submit < reqs.size(), "ServingSimulator: stalled with no work");
      now = std::max(now, reqs[next_submit].arrival_s);
      continue;
    }
    max_live = std::max(max_live, scheduler.live_sequences());

    if (!plan.prefills.empty()) {
      double prompt_sum = 0;
      for (auto id : plan.prefills) {
        double effective = static_cast<double>(reqs[id].prompt_tokens);
        if (caching && prefix_cached) {
          // A prompt may be no longer than the shared prefix (e.g. an empty
          // question after the system prompt); it still prefills at least
          // one token to produce its first output.
          effective = std::max(1.0, effective - static_cast<double>(shared_prefix));
        }
        prompt_sum += effective;
      }
      if (caching) prefix_cached = true;  // first prefill populated the cache
      const auto mean_prompt = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(prompt_sum / static_cast<double>(plan.prefills.size())));
      const StepBreakdown p = sim_.prefill_step(
          step_cfg, static_cast<std::int64_t>(plan.prefills.size()), mean_prompt);
      now += p.total_s;
      for (auto id : plan.prefills) {
        ttfts.push_back(now - reqs[id].arrival_s);
        if (scheduler.complete_decode_token(id)) {
          e2es.push_back(now - reqs[id].arrival_s);
          total_tokens +=
              static_cast<double>(reqs[id].prompt_tokens + reqs[id].output_tokens);
          ++completed;
        }
      }
    }

    if (!plan.decodes.empty()) {
      double ctx_sum = 0;
      for (auto id : plan.decodes) ctx_sum += static_cast<double>(scheduler.context_length(id));
      const StepBreakdown d = sim_.decode_step(
          step_cfg, static_cast<std::int64_t>(plan.decodes.size()),
          ctx_sum / static_cast<double>(plan.decodes.size()));
      now += d.total_s;
      for (auto id : plan.decodes) {
        if (scheduler.complete_decode_token(id)) {
          e2es.push_back(now - reqs[id].arrival_s);
          total_tokens +=
              static_cast<double>(reqs[id].prompt_tokens + reqs[id].output_tokens);
          ++completed;
        }
      }
    }
  }

  // ---- Metrics ---------------------------------------------------------------
  auto& m = res.metrics;
  const double arrival_span = reqs.back().arrival_s - first_arrival;
  // N arrivals span N-1 inter-arrival gaps: the first request opens the
  // window rather than occupying span time (a single request offers no
  // sustained load).
  m.offered_load_rps =
      reqs.size() > 1 && arrival_span > 0
          ? static_cast<double>(reqs.size() - 1) / arrival_span
          : 0.0;
  m.makespan_s = now - first_arrival;
  m.achieved_rps = m.makespan_s > 0
                       ? static_cast<double>(reqs.size()) / m.makespan_s
                       : 0.0;
  m.throughput_tps = m.makespan_s > 0 ? total_tokens / m.makespan_s : 0.0;
  // One sort per sample; the quantile calls reuse it.
  std::sort(ttfts.begin(), ttfts.end());
  std::sort(e2es.begin(), e2es.end());
  m.ttft_p50_s = util::quantile_sorted(ttfts, 0.50);
  m.ttft_p95_s = util::quantile_sorted(ttfts, 0.95);
  m.ttft_p99_s = util::quantile_sorted(ttfts, 0.99);
  m.e2e_p50_s = util::quantile_sorted(e2es, 0.50);
  m.e2e_p95_s = util::quantile_sorted(e2es, 0.95);
  m.e2e_p99_s = util::quantile_sorted(e2es, 0.99);
  m.max_concurrency = max_live;
  m.peak_queue_depth = peak_queue;
  m.saturated = m.offered_load_rps > 0 && m.achieved_rps < 0.95 * m.offered_load_rps;
  if (slo_ttft_s > 0) {
    std::size_t met = 0;
    for (double v : ttfts) met += v <= slo_ttft_s;
    m.slo_goodput = static_cast<double>(met) / static_cast<double>(ttfts.size());
  }
  return res;
}

}  // namespace llmib::sim
