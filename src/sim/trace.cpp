#include "sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"

namespace llmib::sim {

using util::require;

RequestTrace::RequestTrace(std::vector<TraceRequest> requests)
    : requests_(std::move(requests)) {
  validate();
}

void RequestTrace::validate() const {
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const auto& r = requests_[i];
    require(r.arrival_s >= 0, "RequestTrace: negative arrival time");
    require(r.prompt_tokens > 0, "RequestTrace: prompt tokens must be positive");
    require(r.output_tokens > 0, "RequestTrace: output tokens must be positive");
    require(i == 0 || r.arrival_s >= requests_[i - 1].arrival_s,
            "RequestTrace: arrivals must be sorted");
    require(r.prefix_group >= -1, "RequestTrace: prefix_group must be >= -1");
    require(r.shared_prefix_tokens >= 0,
            "RequestTrace: shared_prefix_tokens must be non-negative");
    require(r.shared_prefix_tokens <= r.prompt_tokens,
            "RequestTrace: shared_prefix_tokens exceeds prompt");
    require(r.cacheable_tokens >= -1,
            "RequestTrace: cacheable_tokens must be >= -1");
    require(r.tenant >= 0, "RequestTrace: negative tenant id");
  }
}

RequestTrace RequestTrace::from_workload(const ServingWorkload& wl) {
  require(wl.arrival_rate_rps > 0, "RequestTrace: arrival rate must be positive");
  require(wl.num_requests > 0, "RequestTrace: need at least one request");
  require(wl.prompt_min > 0 && wl.prompt_min <= wl.prompt_max,
          "RequestTrace: bad prompt range");
  require(wl.output_min > 0 && wl.output_min <= wl.output_max,
          "RequestTrace: bad output range");
  // Identical RNG consumption order to ServingSimulator::run, so replaying
  // this trace reproduces that run exactly.
  util::Rng rng(wl.seed);
  std::vector<TraceRequest> reqs(static_cast<std::size_t>(wl.num_requests));
  double t = 0;
  for (auto& r : reqs) {
    t += rng.exponential(wl.arrival_rate_rps);
    r.arrival_s = t;
    r.prompt_tokens = rng.uniform_int(wl.prompt_min, wl.prompt_max);
    r.output_tokens = rng.uniform_int(wl.output_min, wl.output_max);
  }
  return RequestTrace(std::move(reqs));
}

RequestTrace RequestTrace::parse_csv(std::istream& in) {
  std::vector<TraceRequest> reqs;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::parse_csv_line(line);
    if (first && !fields.empty() && fields[0] == "arrival_s") {
      first = false;
      continue;  // header
    }
    first = false;
    require(fields.size() == 3 || fields.size() == 6 || fields.size() == 7,
            "RequestTrace: expected 3, 6 or 7 columns, got " +
                std::to_string(fields.size()));
    TraceRequest r;
    char* end = nullptr;
    r.arrival_s = std::strtod(fields[0].c_str(), &end);
    require(end != fields[0].c_str(), "RequestTrace: bad arrival value");
    r.prompt_tokens = std::strtoll(fields[1].c_str(), &end, 10);
    require(end != fields[1].c_str(), "RequestTrace: bad prompt value");
    r.output_tokens = std::strtoll(fields[2].c_str(), &end, 10);
    require(end != fields[2].c_str(), "RequestTrace: bad output value");
    if (fields.size() >= 6) {
      r.prefix_group = std::strtoll(fields[3].c_str(), &end, 10);
      require(end != fields[3].c_str(), "RequestTrace: bad prefix_group value");
      r.shared_prefix_tokens = std::strtoll(fields[4].c_str(), &end, 10);
      require(end != fields[4].c_str(),
              "RequestTrace: bad shared_prefix_tokens value");
      r.cacheable_tokens = std::strtoll(fields[5].c_str(), &end, 10);
      require(end != fields[5].c_str(),
              "RequestTrace: bad cacheable_tokens value");
    }
    if (fields.size() == 7) {
      r.tenant = static_cast<std::int32_t>(
          std::strtol(fields[6].c_str(), &end, 10));
      require(end != fields[6].c_str(), "RequestTrace: bad tenant value");
    }
    reqs.push_back(r);
  }
  return RequestTrace(std::move(reqs));
}

RequestTrace RequestTrace::parse_csv_text(const std::string& text) {
  std::istringstream in(text);
  return parse_csv(in);
}

void RequestTrace::write_csv(std::ostream& out) const {
  // Legacy traces stay byte-compatible: the three prefix columns are emitted
  // only when some request actually carries prefix-sharing annotations, and
  // the tenant column only when some request names a non-default tenant
  // (which forces the prefix columns too, to keep positions fixed).
  const bool tenanted = std::any_of(
      requests_.begin(), requests_.end(),
      [](const TraceRequest& r) { return r.tenant != 0; });
  const bool extended =
      tenanted ||
      std::any_of(requests_.begin(), requests_.end(), [](const TraceRequest& r) {
        return r.prefix_group != -1 || r.shared_prefix_tokens != 0 ||
               r.cacheable_tokens != -1;
      });
  std::vector<std::string> header = {"arrival_s", "prompt_tokens",
                                     "output_tokens"};
  if (extended) {
    header.insert(header.end(),
                  {"prefix_group", "shared_prefix_tokens", "cacheable_tokens"});
  }
  if (tenanted) header.push_back("tenant");
  util::CsvWriter writer(out, header);
  char buf[64];
  for (const auto& r : requests_) {
    std::snprintf(buf, sizeof(buf), "%.6f", r.arrival_s);
    std::vector<std::string> row = {buf, std::to_string(r.prompt_tokens),
                                    std::to_string(r.output_tokens)};
    if (extended) {
      row.push_back(std::to_string(r.prefix_group));
      row.push_back(std::to_string(r.shared_prefix_tokens));
      row.push_back(std::to_string(r.cacheable_tokens));
    }
    if (tenanted) row.push_back(std::to_string(r.tenant));
    writer.write_row(row);
  }
}

std::string RequestTrace::to_csv_text() const {
  std::ostringstream out;
  write_csv(out);
  return out.str();
}

double RequestTrace::offered_load_rps() const {
  if (requests_.size() < 2) return 0.0;
  const double span = requests_.back().arrival_s - requests_.front().arrival_s;
  return span > 0 ? static_cast<double>(requests_.size()) / span : 0.0;
}

std::int64_t RequestTrace::total_tokens() const {
  std::int64_t total = 0;
  for (const auto& r : requests_) total += r.prompt_tokens + r.output_tokens;
  return total;
}

double RequestTrace::max_prompt() const {
  double m = 0;
  for (const auto& r : requests_) m = std::max(m, static_cast<double>(r.prompt_tokens));
  return m;
}

double RequestTrace::max_output() const {
  double m = 0;
  for (const auto& r : requests_) m = std::max(m, static_cast<double>(r.output_tokens));
  return m;
}

ServingSimulator::Result replay_trace(const ServingSimulator& serving,
                                      const SimConfig& base,
                                      const RequestTrace& trace, double slo_ttft_s) {
  require(!trace.empty(), "replay_trace: empty trace");
  return serving.run_trace(base, trace.requests(), slo_ttft_s);
}

}  // namespace llmib::sim
